//! Sharded cluster scale-out: a routing tier over N per-shard event
//! cores (beyond the paper).
//!
//! Every earlier subsystem models one node; the ROADMAP's north star is
//! the fleet. This module puts a **routing tier** in front of N backend
//! shards: arrivals draw Zipf-skewed keys (configurable skew `s` and
//! hot-key fraction, the YCSB-style hotspot mix), the router maps each
//! key to a shard, and every shard owns its **own** derated
//! [`SlotPool`] + [`CompletionTimer`] pair whose events live on its own
//! core lane of a [`simcore::ShardedCores`] group. Shards advance in
//! bounded lock-step windows with a deterministic cross-core
//! `(timestamp, seq)` merge, so the whole cluster simulation is a pure
//! function of its seed — the same byte-identical guarantee the
//! executor proves across worker counts, now *inside* one experiment:
//! results are identical whether the shards share 1, 2, 4 or 8 event
//! cores ([`ClusterBenchmark::shard_cores`]), which is what makes
//! per-lane parallel execution a pure optimization later.
//!
//! The sweep tells three stories, one per finding:
//!
//! * **Skew concentrates the tail** — at a fixed shard count, raising
//!   the Zipf skew piles the hot keys' traffic onto one shard, so the
//!   hottest shard's load share (and its p99) grows while the cluster
//!   median barely moves.
//! * **Scale-out flattens the median, not the hot tail** — growing the
//!   cluster 1→256 shards at utilization-constant load drains the
//!   average shard, but the hottest key still lands on exactly one
//!   shard whose load share does not shrink with N, so the hot shard's
//!   p99 keeps growing while p50 falls.
//! * **Rebalancing restores balance under churn** — a stale routing
//!   policy that funnels the (rotating, tenant-churned) hot set onto
//!   shard 0 builds a large steady imbalance; resharding to hashed
//!   placement mid-run restores the steady-phase imbalance to the
//!   hash-placement floor.
//!
//! **Round two — replication, failover and scatter-gather.** A second
//! family of sweep points (the *quorum* settings,
//! [`ClusterSetting::failover_sweep`]) layers redundancy on the same
//! routing tier: each key's replica set is the R successive shards
//! walking the FNV ring from its home, writes touch the first W alive
//! replicas and reads the first `R_q = R + 1 - W` (a Dynamo-style sloppy
//! quorum that transparently re-resolves past dead shards), and a
//! scatter-gather class fans one request across K shards. A multi-shard
//! request's sojourn is the **max** over its sub-requests — the
//! tail-at-scale amplifier: one slow (or re-routed) replica inflates the
//! whole request. Fault injection is seed-derived and virtual-time
//! exact: a shard dies at a mid-window instant (its in-service and
//! queued work is abandoned and resolved as failed — the redistribution
//! drop spike), its keys re-route to surviving replicas (emitted as
//! [`SpanKind::HandOff`] instants), and an optional recovery instant
//! brings it back cold. Offered load is derated by the expected
//! sub-requests per request so quorum points stay
//! utilization-comparable with the plain ones.
//!
//! Determinism contract: the arrival, service and key streams are split
//! once per trial and cloned per sweep point (common random numbers, the
//! `loadgen` discipline), the service stream is consumed in the merged
//! event order (which is core-count invariant), and each arrival's key
//! costs exactly two draws whatever the outcome, so sweep points stay
//! coupled and figures are bit-identical for any executor worker count
//! *and* any shard-core count. The quorum settings extend the contract
//! without disturbing it: the request-class and fault streams are two
//! *additional* named splits taken after the original three (split
//! derivation is label-keyed, so the legacy streams are unchanged), a
//! quorum arrival costs exactly one class draw on top of the two key
//! draws whatever its class, and a setting with `R = W = K = 1` and no
//! fault replays the plain single-shard routing bit for bit.

use kvstore::{Shard, ShardStats};
use platforms::Platform;
use simcore::error::SimError;
use simcore::obs::{Recorder, SpanKind};
use simcore::resource::CompletionTimer;
use simcore::stats::{Cdf, RunningStats};
use simcore::{Nanos, ShardedCores, SimRng};

use crate::loadgen::ARRIVAL_CHUNK;
use crate::slots::{backend_profile, Admission, ClassConfig, SlotPolicy, SlotPool};
pub use crate::slots::{LoadBackend, ServiceProfile};

/// Baseline Zipf skew of the shard-count sweep (the `s` in Zipf(s)).
pub const BASELINE_THETA: f64 = 0.9;

/// How the routing tier places keys on shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// FNV-hash every key over the shards — the balanced placement.
    Hashed,
    /// Funnel the *currently hot* key set onto shard 0 (a stale
    /// range-partitioned placement), hash everything else — the
    /// adversarial baseline the rebalance experiment starts from.
    Pinned,
    /// Start [`RoutePolicy::Pinned`], then reshard to
    /// [`RoutePolicy::Hashed`] at the steady-phase boundary
    /// ([`ClusterBenchmark::rebalance_after`]) — resharding during
    /// tenant churn.
    Rebalance,
}

/// The seed-derived shard-failure scenario of one quorum sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// No shard dies.
    None,
    /// One seed-chosen shard dies at a seed-jittered mid-window instant
    /// and never comes back.
    Fail,
    /// The shard dies mid-window and recovers (cold) a quarter-window
    /// later.
    FailRecover,
}

/// One point of the cluster sweep: a shard count, a Zipf skew, a routing
/// policy, and whether the hot key set churns (rotates) over the window
/// — plus, for the quorum family, a replication factor, a quorum shape,
/// a scatter fan-out and a fault scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSetting {
    /// Number of backend shards behind the router.
    pub shards: usize,
    /// Zipf skew `s` of the hot-set key draw, in `[0, 1)`.
    pub zipf_theta: f64,
    /// Key placement policy of the routing tier.
    pub route: RoutePolicy,
    /// Whether the hot set rotates over the window (tenant churn).
    pub churn: bool,
    /// Whether the point belongs to the quorum (replication/failover)
    /// family. Plain points must keep the quorum fields at their
    /// identities (`replicas == write_quorum == fanout == 1`, no fault).
    pub quorum: bool,
    /// Replication factor R: each key's replica set is the R successive
    /// shards on the FNV ring from its home.
    pub replicas: usize,
    /// Write quorum W in `1..=R`; reads touch `R_q = R + 1 - W`
    /// replicas, so `W = 1` is the read-all tail amplifier and `W = R`
    /// degrades reads to one replica.
    pub write_quorum: usize,
    /// Scatter-gather fan-out K: a scatter request touches the K alive
    /// shards from an arrival-derived uniform anchor (no key affinity),
    /// sojourn = max of the K.
    pub fanout: usize,
    /// The shard-failure scenario of the point.
    pub fault: FaultPlan,
}

impl ClusterSetting {
    /// The quorum-field identities of the plain (single-shard-routing)
    /// family.
    fn plain(shards: usize, zipf_theta: f64, route: RoutePolicy, churn: bool) -> Self {
        ClusterSetting {
            shards,
            zipf_theta,
            route,
            churn,
            quorum: false,
            replicas: 1,
            write_quorum: 1,
            fanout: 1,
            fault: FaultPlan::None,
        }
    }

    /// A hash-routed point with a static hot set.
    pub fn hashed(shards: usize, zipf_theta: f64) -> Self {
        Self::plain(shards, zipf_theta, RoutePolicy::Hashed, false)
    }

    /// The adversarial hot-set-on-shard-0 point under tenant churn, at
    /// the baseline skew.
    pub fn pinned(shards: usize) -> Self {
        Self::plain(shards, BASELINE_THETA, RoutePolicy::Pinned, true)
    }

    /// The resharding-during-churn point: pinned start, hashed after the
    /// rebalance boundary, at the baseline skew.
    pub fn rebalance(shards: usize) -> Self {
        Self::plain(shards, BASELINE_THETA, RoutePolicy::Rebalance, true)
    }

    /// A quorum point: R-way replication with write quorum W (reads
    /// touch `R + 1 - W`), hash routing at the baseline skew, no fault.
    pub fn replicated(shards: usize, replicas: usize, write_quorum: usize) -> Self {
        ClusterSetting {
            quorum: true,
            replicas,
            write_quorum,
            ..Self::plain(shards, BASELINE_THETA, RoutePolicy::Hashed, false)
        }
    }

    /// A scatter-gather point: R-way replication with `W = 1` and the
    /// scatter class fanning across `fanout` shards.
    pub fn scatter(shards: usize, replicas: usize, fanout: usize) -> Self {
        ClusterSetting {
            fanout,
            ..Self::replicated(shards, replicas, 1)
        }
    }

    /// A failover point: R-way replication with `W = 1`, one shard
    /// dying mid-window — and recovering when `recover` is set.
    pub fn failing(shards: usize, replicas: usize, recover: bool) -> Self {
        ClusterSetting {
            fault: if recover {
                FaultPlan::FailRecover
            } else {
                FaultPlan::Fail
            },
            ..Self::replicated(shards, replicas, 1)
        }
    }

    /// Whether the point takes the plain single-shard routing path
    /// (byte-for-byte the pre-replication cluster).
    pub fn is_plain(&self) -> bool {
        !self.quorum
    }

    /// The categorical label of the point in figures and reports.
    pub fn label(&self) -> String {
        if self.quorum {
            return match self.fault {
                FaultPlan::Fail => format!("r{} fail", self.replicas),
                FaultPlan::FailRecover => format!("r{} failrec", self.replicas),
                FaultPlan::None if self.fanout > 1 => {
                    format!("r{} k{}", self.replicas, self.fanout)
                }
                FaultPlan::None if self.replicas > 1 => {
                    format!("r{} w{}", self.replicas, self.write_quorum)
                }
                FaultPlan::None => "r1".to_string(),
            };
        }
        match self.route {
            RoutePolicy::Pinned => format!("s{} pinned", self.shards),
            RoutePolicy::Rebalance => format!("s{} rebal", self.shards),
            RoutePolicy::Hashed if (self.zipf_theta - BASELINE_THETA).abs() > 1e-9 => {
                format!("s{} z{:.2}", self.shards, self.zipf_theta)
            }
            RoutePolicy::Hashed => format!("s{}", self.shards),
        }
    }

    /// The default sweep: shard count 1→256 at the baseline skew, a skew
    /// sweep at 16 shards, and the pinned/rebalance churn pair.
    pub fn default_sweep() -> Vec<ClusterSetting> {
        vec![
            ClusterSetting::hashed(1, BASELINE_THETA),
            ClusterSetting::hashed(4, BASELINE_THETA),
            ClusterSetting::hashed(16, BASELINE_THETA),
            ClusterSetting::hashed(64, BASELINE_THETA),
            ClusterSetting::hashed(256, BASELINE_THETA),
            ClusterSetting::hashed(16, 0.0),
            ClusterSetting::hashed(16, 0.5),
            ClusterSetting::hashed(16, 0.99),
            ClusterSetting::pinned(16),
            ClusterSetting::rebalance(16),
        ]
    }

    /// The replication/failover sweep at 16 shards: replication factor
    /// R=1/2/3, quorum shape W=1 vs W=R, scatter fan-out K=4/16 (every
    /// quorum point's scatter class is its own K=1 baseline when
    /// `fanout == 1`), and the fail / fail-then-recover scenarios.
    pub fn failover_sweep() -> Vec<ClusterSetting> {
        vec![
            ClusterSetting::replicated(16, 1, 1),
            ClusterSetting::replicated(16, 2, 1),
            ClusterSetting::replicated(16, 2, 2),
            ClusterSetting::replicated(16, 3, 1),
            ClusterSetting::replicated(16, 3, 3),
            ClusterSetting::scatter(16, 3, 4),
            ClusterSetting::scatter(16, 3, 16),
            ClusterSetting::failing(16, 2, false),
            ClusterSetting::failing(16, 2, true),
            ClusterSetting::failing(16, 3, true),
        ]
    }
}

/// Configuration of one sharded-cluster sweep.
///
/// Offered load is **utilization-constant**: every point offers
/// `offered_fraction` of the *whole cluster's* derated capacity
/// (`shards x servers_per_shard` slots), so scaling out grows the
/// offered rate with the fleet — the capacity-planning convention under
/// which "does the hot shard keep up" is the interesting question.
#[derive(Debug, Clone)]
pub struct ClusterBenchmark {
    /// Which backend the shards run.
    pub backend: LoadBackend,
    /// Requests offered per sweep point.
    pub requests_per_point: usize,
    /// The shard-count/skew/routing sweep, one point per setting.
    pub sweep: Vec<ClusterSetting>,
    /// Offered load as a fraction of the cluster's saturation capacity.
    pub offered_fraction: f64,
    /// Bounded admission queue depth in front of each shard's slots.
    pub queue_capacity: usize,
    /// Parallel service slots per shard.
    pub servers_per_shard: usize,
    /// Measurement repetitions (trials) per sweep point.
    pub runs: usize,
    /// Execute one real per-shard store operation per this many
    /// dispatched requests (the [`kvstore::Shard`] cache model).
    pub op_sample_every: u64,
    /// Size of the key universe.
    pub keys: usize,
    /// Size of the hot key set the Zipf draw ranks over.
    pub hot_keys: usize,
    /// Fraction of requests drawn from the hot set (the hotspot mix).
    pub hot_fraction: f64,
    /// Event-core lanes the shards multiplex onto (the lock-step group
    /// width). Results are identical for any value — the invariance the
    /// acceptance tests pin at 1/2/4/8.
    pub shard_cores: usize,
    /// Width of one bounded lock-step window, in microseconds. Pure
    /// batching granularity: results are identical for any width.
    pub lockstep_window_us: u64,
    /// Fraction of the arrival window after which the steady phase
    /// begins (imbalance is measured there) and the
    /// [`RoutePolicy::Rebalance`] policy reshards.
    pub rebalance_after: f64,
    /// Hot-set rotations per window when a point churns.
    pub churn_epochs: u32,
    /// Byte budget of each shard's store cache.
    pub cache_bytes_per_shard: usize,
    /// Value payload bytes of the sampled store operations.
    pub value_bytes: usize,
    /// Fraction of quorum-point requests in the scatter-gather class
    /// (fanning across the setting's `fanout` shards). Plain points
    /// ignore it.
    pub scatter_fraction: f64,
    /// Fraction of the remaining (non-scatter) quorum-point requests
    /// that are writes (touching W replicas); the rest are reads
    /// (touching `R + 1 - W`). Plain points ignore it.
    pub write_fraction: f64,
}

impl ClusterBenchmark {
    /// The full-scale configuration for a backend.
    pub fn new(backend: LoadBackend) -> Self {
        ClusterBenchmark {
            backend,
            requests_per_point: 20_000,
            sweep: ClusterSetting::default_sweep(),
            offered_fraction: 0.85,
            queue_capacity: 8_192,
            servers_per_shard: 4,
            runs: 5,
            op_sample_every: 4,
            keys: 4_096,
            hot_keys: 16,
            hot_fraction: 0.3,
            shard_cores: 4,
            lockstep_window_us: 50,
            rebalance_after: 0.5,
            churn_epochs: 4,
            cache_bytes_per_shard: 64 << 10,
            value_bytes: 128,
            scatter_fraction: 0.2,
            write_fraction: 0.3,
        }
    }

    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick(backend: LoadBackend) -> Self {
        ClusterBenchmark {
            requests_per_point: 2_500,
            runs: 3,
            ..ClusterBenchmark::new(backend)
        }
    }

    /// The full-scale replication/failover configuration for a backend:
    /// the quorum sweep over the same request budget and shard fabric.
    pub fn failover(backend: LoadBackend) -> Self {
        ClusterBenchmark {
            sweep: ClusterSetting::failover_sweep(),
            ..ClusterBenchmark::new(backend)
        }
    }

    /// The scaled-down replication/failover configuration.
    pub fn failover_quick(backend: LoadBackend) -> Self {
        ClusterBenchmark {
            sweep: ClusterSetting::failover_sweep(),
            ..ClusterBenchmark::quick(backend)
        }
    }

    /// The per-shard service profile on `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate profile — an
    /// empty per-shard pool, or a platform derate that collapses the
    /// service time to zero.
    pub fn service_profile(&self, platform: &Platform) -> Result<ServiceProfile, SimError> {
        backend_profile(self.backend, platform, self.servers_per_shard)
    }

    fn validate(&self) -> Result<(), SimError> {
        let check_rate = |what: &str, v: f64| {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SimError::InvalidConfig(format!(
                    "{what} must be a fraction in [0, 1], got {v}"
                )));
            }
            Ok(())
        };
        check_rate("cluster hot-key fraction", self.hot_fraction)?;
        check_rate("cluster rebalance boundary", self.rebalance_after)?;
        check_rate("cluster scatter fraction", self.scatter_fraction)?;
        check_rate("cluster write fraction", self.write_fraction)?;
        if self.keys == 0 || self.hot_keys == 0 || self.hot_keys > self.keys {
            return Err(SimError::InvalidConfig(format!(
                "cluster key universe ({}) must contain the hot set ({})",
                self.keys, self.hot_keys
            )));
        }
        if self.requests_per_point == 0 {
            return Err(SimError::InvalidConfig(
                "cluster sweep needs at least one request per point".into(),
            ));
        }
        for setting in &self.sweep {
            Self::validate_setting(setting)?;
        }
        Ok(())
    }

    fn validate_setting(setting: &ClusterSetting) -> Result<(), SimError> {
        if setting.shards == 0 {
            return Err(SimError::InvalidConfig(
                "cluster points need at least one shard".into(),
            ));
        }
        if !setting.zipf_theta.is_finite() || !(0.0..1.0).contains(&setting.zipf_theta) {
            return Err(SimError::InvalidConfig(format!(
                "cluster Zipf skew must lie in [0, 1), got {}",
                setting.zipf_theta
            )));
        }
        if setting.quorum {
            if setting.route != RoutePolicy::Hashed {
                return Err(SimError::InvalidConfig(
                    "quorum points require hashed routing (the ring the replica walk uses)".into(),
                ));
            }
            if setting.replicas == 0 || setting.replicas > setting.shards {
                return Err(SimError::InvalidConfig(format!(
                    "replication factor {} must lie in 1..={} shards",
                    setting.replicas, setting.shards
                )));
            }
            if setting.write_quorum == 0 || setting.write_quorum > setting.replicas {
                return Err(SimError::InvalidConfig(format!(
                    "write quorum {} must lie in 1..={} replicas",
                    setting.write_quorum, setting.replicas
                )));
            }
            if setting.fanout == 0 || setting.fanout > setting.shards {
                return Err(SimError::InvalidConfig(format!(
                    "scatter fan-out {} must lie in 1..={} shards",
                    setting.fanout, setting.shards
                )));
            }
            if setting.fault != FaultPlan::None && setting.shards < 2 {
                return Err(SimError::InvalidConfig(
                    "a fault plan needs at least two shards (one must survive)".into(),
                ));
            }
        } else if setting.replicas != 1
            || setting.write_quorum != 1
            || setting.fanout != 1
            || setting.fault != FaultPlan::None
        {
            return Err(SimError::InvalidConfig(
                "plain points must keep the quorum fields at their identities".into(),
            ));
        }
        Ok(())
    }

    /// Runs the whole cluster sweep once and returns one
    /// [`ClusterPoint`] per configured setting.
    ///
    /// This is the unit the parallel executor shards on. The arrival,
    /// service and key streams are common random numbers across the
    /// sweep points, and every point replays its events through the
    /// merged lock-step core group, so the result is independent of
    /// [`ClusterBenchmark::shard_cores`] and
    /// [`ClusterBenchmark::lockstep_window_us`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate service
    /// profile, hotspot mix, Zipf skew or sweep point.
    pub fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<ClusterPoint>, SimError> {
        self.validate()?;
        let profile = self.service_profile(platform)?;
        // Common random numbers: every sweep point replays the same
        // unit-rate arrival gaps, backend service sequence, key walk,
        // request-class walk and fault draws. The class and fault splits
        // came later; taking them *after* the original three keeps the
        // legacy streams bit-identical (split derivation is label-keyed
        // but advances the parent generator).
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        let keys = rng.split("keys");
        let classes = rng.split("classes");
        let faults = rng.split("faults");
        self.sweep
            .iter()
            .map(|setting| {
                let streams = ClusterState {
                    arrival_rng: arrival.clone(),
                    service_rng: service.clone(),
                    key_rng: keys.clone(),
                    class_rng: classes.clone(),
                };
                self.run_setting(&profile, setting, streams, faults.clone(), None)
                    .map(|(point, _)| point)
            })
            .collect()
    }

    /// Runs one sweep point with the span recorder attached and returns
    /// the measured point together with the recorder, ready for export.
    ///
    /// The stream discipline matches [`ClusterBenchmark::run_trial`]
    /// (the same three named splits taken in the same order), and the
    /// recorder consumes no draws, so the traced point is equal to the
    /// corresponding untraced sweep point. Event-core counters are *not*
    /// attached to the timeline: the wheel-topology counters legitimately
    /// differ per [`ClusterBenchmark::shard_cores`], while the traced
    /// artifacts must stay byte-identical for any lane count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate service
    /// profile, hotspot mix, Zipf skew or sweep point.
    pub fn run_setting_traced(
        &self,
        platform: &Platform,
        setting: &ClusterSetting,
        rng: &mut SimRng,
        recorder: Recorder,
    ) -> Result<(ClusterPoint, Recorder), SimError> {
        self.validate()?;
        Self::validate_setting(setting)?;
        let profile = self.service_profile(platform)?;
        let streams = ClusterState {
            arrival_rng: rng.split("arrivals"),
            service_rng: rng.split("service"),
            key_rng: rng.split("keys"),
            class_rng: rng.split("classes"),
        };
        let faults = rng.split("faults");
        let (point, obs) = self.run_setting(&profile, setting, streams, faults, Some(recorder))?;
        Ok((point, obs.expect("the traced run returns its recorder")))
    }

    /// The expected backend work units per request at a setting — the
    /// derate that keeps quorum points utilization-comparable with plain
    /// ones (exactly `1.0` for a plain point, so its offered rate is
    /// untouched). Replica subs each do a full operation; a scatter's K
    /// partial queries each do a `1/K` partition slice, so its work is
    /// one unit whatever the fan-out — which keeps the per-shard load
    /// *composition* identical across a fan-out sweep and leaves the
    /// max-of-K statistic unconfounded by utilization shifts.
    fn expected_work(&self, setting: &ClusterSetting) -> f64 {
        if setting.is_plain() {
            return 1.0;
        }
        let read_quorum = (setting.replicas + 1 - setting.write_quorum) as f64;
        let sf = self.scatter_fraction;
        let wf = self.write_fraction;
        sf + (1.0 - sf) * (wf * setting.write_quorum as f64 + (1.0 - wf) * read_quorum)
    }

    /// Runs one sweep point through the lock-step core group.
    fn run_setting(
        &self,
        profile: &ServiceProfile,
        setting: &ClusterSetting,
        mut st: ClusterState,
        mut fault_rng: SimRng,
        obs: Option<Recorder>,
    ) -> Result<(ClusterPoint, Option<Recorder>), SimError> {
        let shards = setting.shards;
        let capacity_per_shard = profile.servers as f64 / profile.service_time.as_secs_f64();
        let offered_per_sec = (capacity_per_shard * shards as f64 * self.offered_fraction
            / self.expected_work(setting))
        .max(1.0);
        let mut sim = ClusterSim::new(self, profile, setting, offered_per_sec, obs)?;
        let lanes = self.shard_cores.max(1).min(shards);
        let mut cores: ShardedCores<Ev> = ShardedCores::new(lanes);
        // Kick off the batched arrival source and the in-flight probes.
        cores.push(0, Nanos::ZERO, Ev::Generate);
        let probes = 64u32;
        let window_secs = self.requests_per_point as f64 / offered_per_sec;
        let probe_period = Nanos::from_secs_f64(window_secs / f64::from(probes));
        cores.push(0, probe_period, Ev::Probe { remaining: probes });
        // Seed-derived fault injection: the victim shard and the jitter
        // of the failure instant come from the per-trial fault stream
        // (cloned per point), and the instants are pure virtual times —
        // bit-identical for any lane count.
        if setting.fault != FaultPlan::None {
            let victim = fault_rng.index(shards);
            let jitter = fault_rng.uniform01();
            let fail_at = Nanos::from_secs_f64(window_secs * (0.35 + 0.2 * jitter));
            sim.failed_shard = Some(victim);
            sim.fail_at = fail_at;
            cores.push(
                sim.lane_of(victim),
                fail_at,
                Ev::Fail {
                    shard: victim as u32,
                },
            );
            if setting.fault == FaultPlan::FailRecover {
                let recover_at = fail_at + Nanos::from_secs_f64(0.25 * window_secs);
                sim.recover_at = recover_at;
                cores.push(
                    sim.lane_of(victim),
                    recover_at,
                    Ev::Recover {
                        shard: victim as u32,
                    },
                );
            }
        }
        // The bounded lock-step drive: every core reaches the window
        // boundary before any core enters the next window. The boundary
        // jumps over empty windows, so the width is pure batching.
        let window = Nanos::from_micros(self.lockstep_window_us.max(1));
        let mut horizon = window;
        loop {
            while let Some((_lane, now, ev)) = cores.pop_within(horizon) {
                sim.handle(now, ev, &mut cores, &mut st);
            }
            let Some(next) = cores.peek_time() else {
                break;
            };
            let w = window.as_nanos();
            horizon = Nanos::from_nanos(next.as_nanos().div_ceil(w).max(1) * w);
        }
        let obs = sim.obs.take();
        Ok((
            sim.into_point(setting, offered_per_sec, cores.frontier()),
            obs,
        ))
    }
}

/// One measured point of the cluster sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPoint {
    /// Categorical sweep label (e.g. `s16`, `s16 z0.99`, `s16 rebal`).
    pub label: String,
    /// Number of backend shards at the point.
    pub shards: usize,
    /// Zipf skew of the point's hot-set draw.
    pub zipf_theta: f64,
    /// Offered load in requests per second (cluster-wide).
    pub offered_per_sec: f64,
    /// Completed throughput in requests per second.
    pub achieved_per_sec: f64,
    /// Median cluster-wide sojourn time in microseconds.
    pub p50_us: f64,
    /// 95th-percentile cluster-wide sojourn time in microseconds.
    pub p95_us: f64,
    /// 99th-percentile cluster-wide sojourn time in microseconds.
    pub p99_us: f64,
    /// Mean cluster-wide sojourn time in microseconds.
    pub mean_us: f64,
    /// 99th-percentile sojourn time on the hottest shard (by arrivals).
    pub hot_p99_us: f64,
    /// The hottest shard's fraction of all arrivals.
    pub hot_share: f64,
    /// Steady-phase imbalance: the hottest shard's steady-phase arrival
    /// count over the per-shard mean (1.0 = perfectly balanced). The
    /// steady phase is the window past the rebalance boundary, so the
    /// rebalance point reports its *post-reshard* placement quality.
    pub imbalance: f64,
    /// Requests dropped at shard admission queues over all issued.
    pub drop_fraction: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped by bounded shard queues.
    pub dropped: u64,
    /// Probe-sampled peak of cluster-wide in-flight requests.
    pub peak_in_flight: usize,
    /// Time-averaged cluster-wide in-flight depth from the probes.
    pub mean_in_flight: f64,
    /// Live entries across all shard caches at the end of the window.
    pub store_entries: u64,
    /// Bytes across all shard caches at the end of the window.
    pub store_bytes: u64,
    /// Evictions across all shard caches over the window.
    pub store_evictions: u64,
    /// Whether the routing tier resharded mid-window.
    pub rebalanced: bool,
    /// Events processed by the lock-step core group at this point.
    pub events: u64,
    /// Replication factor R of the point (1 for plain points).
    pub replicas: usize,
    /// Write quorum W of the point (1 for plain points).
    pub write_quorum: usize,
    /// Scatter fan-out K of the point (1 for plain points).
    pub fanout: usize,
    /// 99th-percentile sojourn of the scatter-gather class, in
    /// microseconds (0.0 when the point has no scatter requests).
    pub scatter_p99_us: f64,
    /// Sub-requests the sloppy quorum re-routed around a dead shard.
    pub failover_handoffs: u64,
    /// The shard the fault plan killed (-1 when no shard died).
    pub failed_shard: i64,
    /// Virtual time of the failure instant in microseconds (-1.0 when
    /// the point has no fault).
    pub fail_at_us: f64,
    /// Virtual time of the recovery instant in microseconds (-1.0 when
    /// the shard never recovers).
    pub recover_at_us: f64,
    /// Drop rate over requests resolved before the failure instant.
    pub pre_fail_drop_rate: f64,
    /// Drop rate over requests resolved between failure and recovery —
    /// the redistribution spike.
    pub fail_window_drop_rate: f64,
    /// Drop rate over requests resolved after the recovery instant; the
    /// subsided-spike gate asserts it returns to the pre-failure band.
    pub post_recover_drop_rate: f64,
}

/// A request waiting in a shard's admission queue or in service.
#[derive(Debug, Clone, Copy)]
struct Req {
    /// Cluster-wide arrival index — the stable trace-sampling identity,
    /// assigned by the router in generation order (lane-count
    /// invariant).
    id: u64,
    arrived: Nanos,
    key: u32,
}

/// Typed events of the cluster simulation — no boxed closures; the
/// merged pop order alone drives the state machine, which is what makes
/// the run core-count invariant.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Sample and push the next chunk of routed arrivals (router, lane 0).
    Generate,
    /// One arrival at `shard` for `key`, the cluster's `id`-th overall.
    Arrive { shard: u32, id: u64, key: u32 },
    /// Completion-timer wake on `shard`.
    Drain { shard: u32 },
    /// Fixed-cadence cluster in-flight probe (lane 0).
    Probe { remaining: u32 },
    /// The fault plan kills `shard`: its in-service and queued work is
    /// abandoned (resolved as failed) and the routing tier re-resolves
    /// its keys to surviving replicas.
    Fail { shard: u32 },
    /// The killed shard comes back cold (empty pool, empty cache).
    Recover { shard: u32 },
}

/// The request class a quorum arrival draws (plain arrivals have none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqClass {
    /// Touches `R + 1 - W` replicas.
    Read,
    /// Touches W replicas.
    Write,
    /// Fans across K shards.
    Scatter,
}

/// Parent bookkeeping of one quorum request: the request completes when
/// its last sub-request resolves (sojourn = max over the quorum, since
/// the merged event order is non-decreasing in time), and it fails if
/// *any* sub-request failed.
#[derive(Debug, Clone, Copy)]
struct Parent {
    remaining: u32,
    failed: bool,
    arrived: Nanos,
    class: ReqClass,
}

/// The per-trial random streams, cloned per sweep point.
struct ClusterState {
    arrival_rng: SimRng,
    service_rng: SimRng,
    key_rng: SimRng,
    class_rng: SimRng,
}

/// One backend shard: its own bounded slot pool, completion timer and
/// store cache.
struct ShardNode {
    pool: SlotPool<Req>,
    completions: CompletionTimer<Req>,
    cache: Shard,
    arrivals: u64,
    steady_arrivals: u64,
    dispatched: u64,
    latencies_us: Vec<f64>,
}

/// The discrete-event state of one cluster sweep point.
struct ClusterSim<'a> {
    bench: &'a ClusterBenchmark,
    profile: ServiceProfile,
    setting: ClusterSetting,
    offered_per_sec: f64,
    lanes: usize,
    shards: Vec<ShardNode>,
    /// Arrival index of the next generated request.
    next_arrival: u64,
    remaining_arrivals: u64,
    /// First arrival index of the steady phase (and reshard boundary).
    boundary: u64,
    /// Arrivals per churn epoch (`u64::MAX` when the hot set is static).
    epoch_len: u64,
    latencies_us: Vec<f64>,
    completed: u64,
    dropped: u64,
    events: u64,
    in_flight_probe: RunningStats,
    peak_in_flight: usize,
    drain_buf: Vec<(Nanos, Req)>,
    dispatch_buf: Vec<(usize, Nanos, Req)>,
    /// Observation-only trace recorder; `None` is the zero-cost path.
    obs: Option<Recorder>,
    /// Recorder lane per shard (`shard{i}`), empty when untraced.
    obs_lanes: Vec<u32>,
    /// Liveness per shard; only a fault plan ever clears an entry.
    alive: Vec<bool>,
    /// Parent bookkeeping per arrival index (quorum points only; plain
    /// points never allocate it).
    parents: Vec<Parent>,
    /// Reusable sub-request target buffer of the quorum walk.
    target_buf: Vec<u32>,
    /// Sojourns of completed scatter-class requests, in microseconds.
    scatter_latencies_us: Vec<f64>,
    /// Sub-requests the sloppy quorum re-routed around a dead shard.
    failover_handoffs: u64,
    /// The fault plan's victim, once drawn.
    failed_shard: Option<usize>,
    /// Failure instant (`Nanos::MAX` when the point has no fault).
    fail_at: Nanos,
    /// Recovery instant (`Nanos::MAX` when the shard never recovers).
    recover_at: Nanos,
    /// Requests resolved per phase (pre-fail / fail window / post-recover).
    issued_by_phase: [u64; 3],
    /// Requests dropped per phase.
    dropped_by_phase: [u64; 3],
}

/// "Not scheduled" sentinel of the fault instants: later than any
/// reachable virtual time, so every request resolves in the pre-fail
/// phase when the point has no fault.
const NEVER: Nanos = Nanos::from_nanos(u64::MAX);

/// FNV-1a over a key id — the router's placement hash.
fn fnv(key: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<'a> ClusterSim<'a> {
    fn new(
        bench: &'a ClusterBenchmark,
        profile: &ServiceProfile,
        setting: &ClusterSetting,
        offered_per_sec: f64,
        mut obs: Option<Recorder>,
    ) -> Result<Self, SimError> {
        let obs_lanes = match obs.as_mut() {
            Some(o) => (0..setting.shards)
                .map(|i| o.lane(&format!("shard{i}")))
                .collect(),
            None => Vec::new(),
        };
        let shards = (0..setting.shards)
            .map(|_| {
                Ok(ShardNode {
                    pool: SlotPool::new(
                        profile.servers,
                        SlotPolicy::FifoArrival,
                        vec![ClassConfig {
                            weight: 1,
                            queue_capacity: bench.queue_capacity,
                            mean_cost: profile.service_time,
                        }],
                    )?,
                    completions: CompletionTimer::new(),
                    cache: Shard::new(bench.cache_bytes_per_shard.max(1024)),
                    arrivals: 0,
                    steady_arrivals: 0,
                    dispatched: 0,
                    latencies_us: Vec::new(),
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        let requests = bench.requests_per_point as u64;
        let epoch_len = if setting.churn {
            (requests / u64::from(bench.churn_epochs.max(1))).max(1)
        } else {
            u64::MAX
        };
        Ok(ClusterSim {
            bench,
            profile: *profile,
            setting: *setting,
            offered_per_sec,
            lanes: bench.shard_cores.max(1).min(setting.shards),
            shards,
            next_arrival: 0,
            remaining_arrivals: requests,
            boundary: (bench.rebalance_after * requests as f64) as u64,
            epoch_len,
            latencies_us: Vec::with_capacity(bench.requests_per_point),
            completed: 0,
            dropped: 0,
            events: 0,
            in_flight_probe: RunningStats::new(),
            peak_in_flight: 0,
            drain_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            obs,
            obs_lanes,
            alive: vec![true; setting.shards],
            parents: if setting.is_plain() {
                Vec::new()
            } else {
                Vec::with_capacity(bench.requests_per_point)
            },
            target_buf: Vec::new(),
            scatter_latencies_us: Vec::new(),
            failover_handoffs: 0,
            failed_shard: None,
            fail_at: NEVER,
            recover_at: NEVER,
            issued_by_phase: [0; 3],
            dropped_by_phase: [0; 3],
        })
    }

    fn lane_of(&self, shard: usize) -> usize {
        shard % self.lanes
    }

    /// Base key id of the hot set at arrival index `idx`: churn rotates
    /// the hot range one hot-set width per epoch (tenant churn).
    fn hot_base(&self, idx: u64) -> u64 {
        if self.epoch_len == u64::MAX {
            0
        } else {
            (idx / self.epoch_len) * self.bench.hot_keys as u64 % self.bench.keys as u64
        }
    }

    fn is_hot(&self, key: u32, idx: u64) -> bool {
        let base = self.hot_base(idx);
        let offset = (u64::from(key) + self.bench.keys as u64 - base) % self.bench.keys as u64;
        offset < self.bench.hot_keys as u64
    }

    /// The routing tier: maps an arrival's key to its shard under the
    /// point's placement policy and phase.
    fn route(&self, key: u32, idx: u64) -> usize {
        let n = self.setting.shards as u64;
        let hashed = (fnv(key) % n) as usize;
        let resharded = self.setting.route == RoutePolicy::Rebalance && idx >= self.boundary;
        match self.setting.route {
            RoutePolicy::Hashed => hashed,
            RoutePolicy::Pinned => {
                if self.is_hot(key, idx) {
                    0
                } else {
                    hashed
                }
            }
            RoutePolicy::Rebalance => {
                if !resharded && self.is_hot(key, idx) {
                    0
                } else {
                    hashed
                }
            }
        }
    }

    /// One key draw of the hotspot mix: two stream draws per arrival
    /// whatever the outcome (hot-set membership, then rank or uniform),
    /// keeping the key stream aligned across sweep points.
    fn draw_key(&self, idx: u64, rng: &mut SimRng) -> u32 {
        if rng.chance(self.bench.hot_fraction) {
            let rank = rng.zipf(self.bench.hot_keys, self.setting.zipf_theta) as u64;
            ((self.hot_base(idx) + rank) % self.bench.keys as u64) as u32
        } else {
            rng.index(self.bench.keys) as u32
        }
    }

    fn handle(&mut self, now: Nanos, ev: Ev, cores: &mut ShardedCores<Ev>, st: &mut ClusterState) {
        self.events += 1;
        match ev {
            Ev::Generate => self.generate(now, cores, st),
            Ev::Arrive { shard, id, key } => self.arrive(now, shard as usize, id, key, cores, st),
            Ev::Drain { shard } => self.drain(now, shard as usize, cores, st),
            Ev::Probe { remaining } => self.probe(now, remaining, cores),
            Ev::Fail { shard } => self.fail_shard(now, shard as usize),
            Ev::Recover { shard } => self.recover_shard(shard as usize),
        }
    }

    /// The failure-phase of a resolution instant: pre-fail, fail window,
    /// or post-recover. Points without a fault resolve everything in the
    /// pre-fail phase.
    fn phase_of(&self, resolved: Nanos) -> usize {
        if resolved < self.fail_at {
            0
        } else if resolved < self.recover_at {
            1
        } else {
            2
        }
    }

    /// Final request-level accounting, shared by both routing families:
    /// classify the resolution instant into a failure phase, then count
    /// the request as dropped (`None`) or record its sojourn.
    fn finish_request(&mut self, now: Nanos, outcome: Option<(Nanos, ReqClass)>) {
        let phase = self.phase_of(now);
        self.issued_by_phase[phase] += 1;
        match outcome {
            None => {
                self.dropped += 1;
                self.dropped_by_phase[phase] += 1;
            }
            Some((arrived, class)) => {
                let sojourn_us = (now - arrived).as_micros_f64();
                self.latencies_us.push(sojourn_us);
                if class == ReqClass::Scatter {
                    self.scatter_latencies_us.push(sojourn_us);
                }
                self.completed += 1;
            }
        }
    }

    /// Resolves one sub-request. On the plain path a "sub-request" is
    /// the request itself (and only failures arrive here — completions
    /// resolve in [`ClusterSim::drain`]); on the quorum path the parent
    /// completes when its **last** sub resolves (sojourn = max over the
    /// quorum, since the merged event order is non-decreasing in time)
    /// and fails if *any* sub failed.
    fn resolve_sub(&mut self, now: Nanos, id: u64, ok: bool) {
        if self.setting.is_plain() {
            debug_assert!(!ok, "plain completions resolve in drain()");
            self.finish_request(now, None);
            return;
        }
        let p = &mut self.parents[id as usize];
        debug_assert!(p.remaining > 0, "a sub-request resolves exactly once");
        p.remaining -= 1;
        p.failed |= !ok;
        if p.remaining == 0 {
            let (failed, arrived, class) = (p.failed, p.arrived, p.class);
            self.finish_request(now, (!failed).then_some((arrived, class)));
        }
    }

    /// The fault plan kills a shard: liveness clears so the router walks
    /// past it, the pool and completion timer are replaced by fresh ones
    /// and every in-service and queued sub-request they held resolves as
    /// failed — the redistribution drop spike — and the cache restarts
    /// cold. Wake-ups armed by the old timer fire against the fresh one,
    /// where they are recognised as stale and drain nothing.
    fn fail_shard(&mut self, now: Nanos, shard: usize) {
        debug_assert!(self.alive[shard], "the fault plan kills a live shard");
        self.alive[shard] = false;
        let node = &mut self.shards[shard];
        let pending = std::mem::take(&mut node.completions).into_pending();
        let fresh = SlotPool::new(
            self.profile.servers,
            SlotPolicy::FifoArrival,
            vec![ClassConfig {
                weight: 1,
                queue_capacity: self.bench.queue_capacity,
                mean_cost: self.profile.service_time,
            }],
        )
        .expect("the startup pool construction validated these parameters");
        let queued = std::mem::replace(&mut node.pool, fresh).into_queued();
        node.cache = Shard::new(self.bench.cache_bytes_per_shard.max(1024));
        for (_, req) in pending {
            if let Some(o) = self.obs.as_mut() {
                o.count_drop(self.obs_lanes[shard], now);
            }
            self.resolve_sub(now, req.id, false);
        }
        for (_, _, req) in queued {
            if let Some(o) = self.obs.as_mut() {
                o.count_drop(self.obs_lanes[shard], now);
            }
            self.resolve_sub(now, req.id, false);
        }
    }

    /// The killed shard comes back cold: liveness only — its pool,
    /// timer and cache were already replaced at the kill.
    fn recover_shard(&mut self, shard: usize) {
        debug_assert!(!self.alive[shard], "recovery follows a kill");
        self.alive[shard] = true;
    }

    /// Samples the next chunk of Poisson interarrival gaps, draws and
    /// routes each arrival's key, and pushes one `Arrive` per gap onto
    /// the target shard's core lane; reschedules itself after the
    /// chunk's last arrival while arrivals remain.
    fn generate(&mut self, now: Nanos, cores: &mut ShardedCores<Ev>, st: &mut ClusterState) {
        let n = self.remaining_arrivals.min(ARRIVAL_CHUNK);
        if n == 0 {
            return;
        }
        self.remaining_arrivals -= n;
        let mut offset = Nanos::ZERO;
        let quorum = !self.setting.is_plain();
        for _ in 0..n {
            offset += Nanos::from_secs_f64(st.arrival_rng.exponential(1.0) / self.offered_per_sec);
            let idx = self.next_arrival;
            self.next_arrival += 1;
            let key = self.draw_key(idx, &mut st.key_rng);
            if quorum {
                self.generate_quorum(now + offset, idx, key, cores, st);
                continue;
            }
            let shard = self.route(key, idx);
            if idx >= self.boundary {
                self.shards[shard].steady_arrivals += 1;
            }
            // A hand-off is a hot key the stale placement pinned to
            // shard 0 that the reshard redirected to its hashed home.
            let handed_off = self.setting.route == RoutePolicy::Rebalance
                && idx >= self.boundary
                && shard != 0
                && self.is_hot(key, idx);
            if let Some(o) = self.obs.as_mut() {
                let lane = self.obs_lanes[shard];
                o.instant(SpanKind::Route, idx, lane, now + offset);
                if handed_off {
                    o.instant(SpanKind::HandOff, idx, lane, now + offset);
                }
            }
            cores.push(
                self.lane_of(shard),
                now + offset,
                Ev::Arrive {
                    shard: shard as u32,
                    id: idx,
                    key,
                },
            );
        }
        if self.remaining_arrivals > 0 {
            cores.push(0, now + offset, Ev::Generate);
        }
    }

    /// Routes one quorum arrival: draw its request class (exactly one
    /// class-stream draw per arrival), walk the FNV ring from the key's
    /// home shard taking the first Q *alive* shards, and push one
    /// sub-arrival per target. A sub landing off its all-alive placement
    /// is a failover hand-off (sloppy quorum).
    fn generate_quorum(
        &mut self,
        at: Nanos,
        idx: u64,
        key: u32,
        cores: &mut ShardedCores<Ev>,
        st: &mut ClusterState,
    ) {
        let u = st.class_rng.uniform01();
        let sf = self.bench.scatter_fraction;
        let class = if u < sf {
            ReqClass::Scatter
        } else if u < sf + (1.0 - sf) * self.bench.write_fraction {
            ReqClass::Write
        } else {
            ReqClass::Read
        };
        let want = match class {
            ReqClass::Scatter => self.setting.fanout,
            ReqClass::Write => self.setting.write_quorum,
            ReqClass::Read => self.setting.replicas + 1 - self.setting.write_quorum,
        };
        let n = self.setting.shards;
        let home = match class {
            // A scatter query has no key affinity: its K-shard slice
            // starts at an arrival-derived uniform anchor (a search
            // fan-out over rotating partitions). Key-homed slices would
            // pile the hot keys' ring neighbourhoods onto the same few
            // shards and confound the max-of-K tail with placement skew.
            ReqClass::Scatter => (fnv(idx as u32) % n as u64) as usize,
            ReqClass::Read | ReqClass::Write => (fnv(key) % n as u64) as usize,
        };
        let mut targets = std::mem::take(&mut self.target_buf);
        targets.clear();
        for j in 0..n {
            if targets.len() == want {
                break;
            }
            let s = (home + j) % n;
            if self.alive[s] {
                targets.push(s as u32);
            }
        }
        debug_assert_eq!(self.parents.len() as u64, idx);
        self.parents.push(Parent {
            remaining: targets.len() as u32,
            failed: targets.is_empty(),
            arrived: at,
            class,
        });
        if targets.is_empty() {
            // Every shard is dead: the router fails the request outright.
            self.finish_request(at, None);
        }
        for (j, &target) in targets.iter().enumerate() {
            let shard = target as usize;
            if idx >= self.boundary {
                self.shards[shard].steady_arrivals += 1;
            }
            let handed_off = shard != (home + j) % n;
            if handed_off {
                self.failover_handoffs += 1;
            }
            if let Some(o) = self.obs.as_mut() {
                let lane = self.obs_lanes[shard];
                o.instant(SpanKind::Route, idx, lane, at);
                if handed_off {
                    o.instant(SpanKind::HandOff, idx, lane, at);
                }
            }
            cores.push(
                self.lane_of(shard),
                at,
                Ev::Arrive {
                    shard: target,
                    id: idx,
                    key,
                },
            );
        }
        self.target_buf = targets;
    }

    /// One routed arrival: admit, enqueue or drop at the shard's bounded
    /// queue. A sub-arrival at a dead shard (routed before the kill)
    /// resolves as failed, like a client whose server vanished mid-call.
    fn arrive(
        &mut self,
        now: Nanos,
        shard: usize,
        id: u64,
        key: u32,
        cores: &mut ShardedCores<Ev>,
        st: &mut ClusterState,
    ) {
        self.shards[shard].arrivals += 1;
        let req = Req {
            id,
            arrived: now,
            key,
        };
        if let Some(o) = self.obs.as_mut() {
            o.count_arrival(self.obs_lanes[shard], now);
        }
        if !self.alive[shard] {
            if let Some(o) = self.obs.as_mut() {
                o.count_drop(self.obs_lanes[shard], now);
            }
            self.resolve_sub(now, id, false);
            return;
        }
        match self.shards[shard].pool.offer(0, now, req) {
            Admission::Dispatched => self.dispatch(now, shard, req, cores, st),
            Admission::Queued => {}
            Admission::Dropped => {
                if let Some(o) = self.obs.as_mut() {
                    o.count_drop(self.obs_lanes[shard], now);
                }
                self.resolve_sub(now, id, false);
            }
        }
        if let Some(o) = self.obs.as_mut() {
            o.gauge(
                self.obs_lanes[shard],
                now,
                self.shards[shard].pool.queued_total(),
                self.shards[shard].pool.busy(),
            );
        }
    }

    /// Dispatch on a shard: sample the backend service time (from the
    /// shared stream, in merged event order), run the sampled store
    /// operation against the shard's cache, and register the completion
    /// with the shard's batched timer.
    fn dispatch(
        &mut self,
        now: Nanos,
        shard: usize,
        req: Req,
        cores: &mut ShardedCores<Ev>,
        st: &mut ClusterState,
    ) {
        let mut service = self
            .profile
            .sample_service_time(&mut st.service_rng)
            .max(Nanos::from_nanos(1));
        // A scatter sub is one of K partial queries over one partition:
        // it costs a 1/K slice of the sampled operation (the sample is
        // drawn either way, keeping the service stream aligned).
        if !self.setting.is_plain() && self.parents[req.id as usize].class == ReqClass::Scatter {
            let slice = service.as_nanos() / self.setting.fanout as u64;
            service = Nanos::from_nanos(slice.max(1));
        }
        let node = &mut self.shards[shard];
        node.dispatched += 1;
        if node.dispatched % self.bench.op_sample_every.max(1) == 0 {
            // Alternate set/get against the shard's bounded LRU cache;
            // the tick is the shard's own dispatch counter.
            let key = format!("k{:08}", req.key);
            if node.dispatched % (2 * self.bench.op_sample_every.max(1)) == 0 {
                let hit = node.cache.get(key.as_bytes(), node.dispatched).is_some();
                if let Some(o) = self.obs.as_mut() {
                    let lane = self.obs_lanes[shard];
                    o.count_cache(lane, now, hit);
                    let kind = if hit {
                        SpanKind::CacheHit
                    } else {
                        SpanKind::CacheMiss
                    };
                    o.instant(kind, req.id, lane, now);
                }
            } else {
                node.cache.set(
                    key.as_bytes(),
                    vec![0u8; self.bench.value_bytes],
                    node.dispatched,
                );
            }
        }
        if let Some(o) = self.obs.as_mut() {
            let lane = self.obs_lanes[shard];
            o.span(SpanKind::AdmissionWait, req.id, lane, req.arrived, now);
            o.span(SpanKind::SlotService, req.id, lane, now, now + service);
        }
        if let Some(wake) = node.completions.schedule(now + service, req) {
            cores.push(
                self.lane_of(shard),
                wake,
                Ev::Drain {
                    shard: shard as u32,
                },
            );
        }
    }

    /// One completion wake on a shard: drains every due completion,
    /// records sojourn times (cluster-wide and per-shard), folds the
    /// batch into the pool and dispatches the pulled queue heads.
    fn drain(
        &mut self,
        now: Nanos,
        shard: usize,
        cores: &mut ShardedCores<Ev>,
        st: &mut ClusterState,
    ) {
        let mut due = std::mem::take(&mut self.drain_buf);
        if let Some(wake) = self.shards[shard].completions.wake(now, &mut due) {
            cores.push(
                self.lane_of(shard),
                wake,
                Ev::Drain {
                    shard: shard as u32,
                },
            );
        }
        for &(at, req) in &due {
            debug_assert_eq!(at, now, "completions drain exactly at their tick");
            let sojourn_us = (now - req.arrived).as_micros_f64();
            self.shards[shard].latencies_us.push(sojourn_us);
            if let Some(o) = self.obs.as_mut() {
                o.count_completion(self.obs_lanes[shard], now);
            }
            if self.setting.is_plain() {
                self.finish_request(now, Some((req.arrived, ReqClass::Read)));
            } else {
                self.resolve_sub(now, req.id, true);
            }
        }
        let mut dispatched = std::mem::take(&mut self.dispatch_buf);
        self.shards[shard]
            .pool
            .finish_batch(due.iter().map(|_| 0), &mut dispatched);
        due.clear();
        self.drain_buf = due;
        for (_, _, next) in dispatched.drain(..) {
            self.dispatch(now, shard, next, cores, st);
        }
        self.dispatch_buf = dispatched;
    }

    fn probe(&mut self, now: Nanos, remaining: u32, cores: &mut ShardedCores<Ev>) {
        let in_flight: usize = self.shards.iter().map(|s| s.pool.in_flight()).sum();
        self.in_flight_probe.record(in_flight as f64);
        self.peak_in_flight = self.peak_in_flight.max(in_flight);
        if remaining > 1 {
            let window_secs = self.bench.requests_per_point as f64 / self.offered_per_sec;
            let period = Nanos::from_secs_f64(window_secs / 64.0);
            cores.push(
                0,
                now + period,
                Ev::Probe {
                    remaining: remaining - 1,
                },
            );
        }
    }

    fn into_point(
        self,
        setting: &ClusterSetting,
        offered_per_sec: f64,
        end: Nanos,
    ) -> ClusterPoint {
        let issued = self.next_arrival;
        debug_assert_eq!(issued, self.completed + self.dropped);
        debug_assert_eq!(issued, self.issued_by_phase.iter().sum::<u64>());
        let phase_rate = |phase: usize| {
            if self.issued_by_phase[phase] == 0 {
                0.0
            } else {
                self.dropped_by_phase[phase] as f64 / self.issued_by_phase[phase] as f64
            }
        };
        let pre_fail_drop_rate = phase_rate(0);
        let fail_window_drop_rate = phase_rate(1);
        let post_recover_drop_rate = phase_rate(2);
        let scatter_p99_us = Cdf::from_samples(self.scatter_latencies_us.clone())
            .map(|c| c.percentile(99.0))
            .unwrap_or(0.0);
        let cdf = Cdf::from_samples(self.latencies_us)
            .expect("a sweep point always completes at least one request");
        let duration = end.as_secs_f64().max(f64::MIN_POSITIVE);
        // The hottest shard by total arrivals anchors the tail story;
        // the steady-phase maximum anchors the placement-quality story.
        let hot = self
            .shards
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.arrivals, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let hot_p99_us = Cdf::from_samples(self.shards[hot].latencies_us.clone())
            .map(|c| c.percentile(99.0))
            .unwrap_or(0.0);
        let steady_total: u64 = self.shards.iter().map(|s| s.steady_arrivals).sum();
        let steady_max = self
            .shards
            .iter()
            .map(|s| s.steady_arrivals)
            .max()
            .unwrap_or(0);
        let steady_mean = steady_total as f64 / self.shards.len() as f64;
        let stats =
            self.shards
                .iter()
                .map(|s| s.cache.stats())
                .fold(ShardStats::default(), |acc, s| ShardStats {
                    len: acc.len + s.len,
                    bytes: acc.bytes + s.bytes,
                    evictions: acc.evictions + s.evictions,
                });
        ClusterPoint {
            label: setting.label(),
            shards: setting.shards,
            zipf_theta: setting.zipf_theta,
            offered_per_sec,
            achieved_per_sec: self.completed as f64 / duration,
            p50_us: cdf.percentile(50.0),
            p95_us: cdf.percentile(95.0),
            p99_us: cdf.percentile(99.0),
            mean_us: cdf.mean(),
            hot_p99_us,
            hot_share: self.shards[hot].arrivals as f64 / issued.max(1) as f64,
            imbalance: if steady_mean > 0.0 {
                steady_max as f64 / steady_mean
            } else {
                1.0
            },
            drop_fraction: self.dropped as f64 / issued.max(1) as f64,
            completed: self.completed,
            dropped: self.dropped,
            peak_in_flight: self.peak_in_flight,
            mean_in_flight: self.in_flight_probe.mean(),
            store_entries: stats.len as u64,
            store_bytes: stats.bytes as u64,
            store_evictions: stats.evictions,
            rebalanced: setting.route == RoutePolicy::Rebalance,
            events: self.events,
            replicas: setting.replicas,
            write_quorum: setting.write_quorum,
            fanout: setting.fanout,
            scatter_p99_us,
            failover_handoffs: self.failover_handoffs,
            failed_shard: self.failed_shard.map_or(-1, |s| s as i64),
            fail_at_us: if self.fail_at == NEVER {
                -1.0
            } else {
                self.fail_at.as_micros_f64()
            },
            recover_at_us: if self.recover_at == NEVER {
                -1.0
            } else {
                self.recover_at.as_micros_f64()
            },
            pre_fail_drop_rate,
            fail_window_drop_rate,
            post_recover_drop_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn tiny(backend: LoadBackend) -> ClusterBenchmark {
        ClusterBenchmark {
            requests_per_point: 800,
            runs: 1,
            ..ClusterBenchmark::quick(backend)
        }
    }

    #[test]
    fn percentiles_are_ordered_and_trials_deterministic_per_seed() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let a = bench
            .run_trial(&platform, &mut SimRng::seed_from(71))
            .unwrap();
        assert_eq!(a.len(), bench.sweep.len());
        for p in &a {
            assert!(
                p.p50_us <= p.p95_us && p.p95_us <= p.p99_us,
                "percentiles out of order at {}: {p:?}",
                p.label
            );
            assert!(p.p50_us > 0.0);
            assert!(p.completed > 0);
            assert_eq!(
                p.completed + p.dropped,
                bench.requests_per_point as u64,
                "{}",
                p.label
            );
            assert!(p.imbalance >= 1.0 - 1e-9, "{}: {p:?}", p.label);
            assert!((0.0..=1.0).contains(&p.hot_share));
        }
        let b = bench
            .run_trial(&platform, &mut SimRng::seed_from(71))
            .unwrap();
        assert_eq!(a, b);
        let c = bench
            .run_trial(&platform, &mut SimRng::seed_from(72))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn results_are_identical_for_any_shard_core_count_and_window() {
        // The tentpole invariance: the merged (timestamp, seq) order is
        // a pure function of the push sequence, so neither the number of
        // core lanes nor the lock-step window width may perturb any
        // measurement.
        let platform = PlatformId::Qemu.build();
        let reference = ClusterBenchmark {
            shard_cores: 1,
            ..tiny(LoadBackend::Memcached)
        };
        let base = reference
            .run_trial(&platform, &mut SimRng::seed_from(73))
            .unwrap();
        for shard_cores in [2usize, 4, 8] {
            let bench = ClusterBenchmark {
                shard_cores,
                ..tiny(LoadBackend::Memcached)
            };
            let got = bench
                .run_trial(&platform, &mut SimRng::seed_from(73))
                .unwrap();
            assert_eq!(base, got, "{shard_cores} shard cores diverged");
        }
        for window_us in [1u64, 10, 1_000, 100_000] {
            let bench = ClusterBenchmark {
                lockstep_window_us: window_us,
                shard_cores: 1,
                ..tiny(LoadBackend::Memcached)
            };
            let got = bench
                .run_trial(&platform, &mut SimRng::seed_from(73))
                .unwrap();
            assert_eq!(base, got, "window {window_us} us diverged");
        }
    }

    #[test]
    fn tracing_is_observation_only_and_byte_identical_across_lane_counts() {
        use simcore::obs::ObsConfig;
        // The recorder consumes no draws and the merged pop order is
        // lane-count invariant, so the traced point equals the untraced
        // one and both artifacts are byte-identical for any core count.
        let platform = PlatformId::Qemu.build();
        let setting = ClusterSetting::rebalance(16);
        let plain = ClusterBenchmark {
            sweep: vec![setting],
            ..tiny(LoadBackend::Memcached)
        }
        .run_trial(&platform, &mut SimRng::seed_from(73))
        .unwrap();
        let mut artifacts: Vec<(String, String)> = Vec::new();
        for shard_cores in [1usize, 2, 4, 8] {
            let bench = ClusterBenchmark {
                shard_cores,
                sweep: vec![setting],
                ..tiny(LoadBackend::Memcached)
            };
            let recorder = Recorder::try_new(ObsConfig::new(7, 0.25)).unwrap();
            let (point, obs) = bench
                .run_setting_traced(&platform, &setting, &mut SimRng::seed_from(73), recorder)
                .unwrap();
            assert_eq!(plain[0], point, "{shard_cores} lanes: tracing perturbed");
            assert!(obs.spans_accepted() > 0);
            artifacts.push((
                obs.chrome_trace_json("cluster"),
                obs.timeline_json("cluster", 73),
            ));
        }
        for (i, a) in artifacts.iter().enumerate().skip(1) {
            assert_eq!(artifacts[0].0, a.0, "chrome trace diverged at lane set {i}");
            assert_eq!(artifacts[0].1, a.1, "timeline diverged at lane set {i}");
        }
        let (trace, timeline) = &artifacts[0];
        assert!(trace.contains("\"route\""), "router instants missing");
        assert!(
            trace.contains("\"hand-off\""),
            "resharded hot keys must record hand-offs"
        );
        assert!(timeline.contains("\"shard0\"") && timeline.contains("\"shard15\""));
        assert!(
            !timeline.contains("\"core\""),
            "cluster timelines must not attach lane-dependent core counters"
        );
    }

    #[test]
    fn hot_shard_share_grows_with_zipf_skew() {
        let platform = PlatformId::Native.build();
        let mut last = 0.0f64;
        let mut shares = Vec::new();
        for theta in [0.0, 0.5, 0.9, 0.99] {
            let bench = ClusterBenchmark {
                sweep: vec![ClusterSetting::hashed(16, theta)],
                ..tiny(LoadBackend::Memcached)
            };
            let p = &bench
                .run_trial(&platform, &mut SimRng::seed_from(74))
                .unwrap()[0];
            shares.push(p.hot_share);
            assert!(
                p.hot_share >= last - 0.02,
                "hot share must not shrink with skew: {shares:?}"
            );
            last = last.max(p.hot_share);
        }
        assert!(
            shares[3] > shares[0] * 1.5,
            "strong skew must visibly concentrate load: {shares:?}"
        );
    }

    #[test]
    fn rebalancing_restores_the_steady_phase_balance() {
        let platform = PlatformId::Native.build();
        let bench = ClusterBenchmark {
            sweep: vec![ClusterSetting::pinned(16), ClusterSetting::rebalance(16)],
            ..tiny(LoadBackend::Memcached)
        };
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(75))
            .unwrap();
        let (pinned, rebal) = (&points[0], &points[1]);
        assert!(rebal.rebalanced && !pinned.rebalanced);
        assert!(
            rebal.imbalance < pinned.imbalance * 0.75,
            "resharding must shrink the steady imbalance: {} vs {}",
            rebal.imbalance,
            pinned.imbalance
        );
    }

    #[test]
    fn sampled_store_operations_populate_the_shard_caches() {
        let platform = PlatformId::Native.build();
        let bench = ClusterBenchmark {
            sweep: vec![ClusterSetting::hashed(4, BASELINE_THETA)],
            cache_bytes_per_shard: 2_048,
            ..tiny(LoadBackend::Memcached)
        };
        let p = &bench
            .run_trial(&platform, &mut SimRng::seed_from(76))
            .unwrap()[0];
        assert!(p.store_entries > 0, "sampled sets must land in the caches");
        assert!(p.store_bytes > 0);
        assert!(
            p.store_evictions > 0,
            "a tiny per-shard budget must evict: {p:?}"
        );
    }

    #[test]
    fn degenerate_configurations_fail_loudly() {
        let platform = PlatformId::Native.build();
        let mut rng = SimRng::seed_from(77);
        let cases = [
            ClusterBenchmark {
                hot_fraction: 1.5,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                rebalance_after: f64::NAN,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                hot_keys: 0,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                keys: 8,
                hot_keys: 16,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                requests_per_point: 0,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::hashed(0, 0.5)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::hashed(4, 1.0)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                servers_per_shard: 0,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                scatter_fraction: -0.1,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                write_fraction: 1.5,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::replicated(4, 8, 1)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::replicated(4, 2, 3)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::scatter(4, 2, 8)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::failing(1, 1, true)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting {
                    route: RoutePolicy::Pinned,
                    ..ClusterSetting::replicated(4, 2, 1)
                }],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting {
                    replicas: 2,
                    ..ClusterSetting::hashed(4, BASELINE_THETA)
                }],
                ..tiny(LoadBackend::Memcached)
            },
        ];
        for bench in cases {
            assert!(
                bench.run_trial(&platform, &mut rng).is_err(),
                "must reject {bench:?}"
            );
        }
    }

    #[test]
    fn quorum_at_r1_replays_plain_routing_bit_for_bit() {
        // R = W = K = 1 makes every class touch exactly the key's FNV
        // home — the PR 7 single-shard routing. With the scatter class
        // switched off (so no scatter percentile accrues), the quorum
        // point must equal the plain point in every field but the label,
        // across seeds and platforms.
        for (seed, platform) in [
            (101, PlatformId::Native),
            (102, PlatformId::Docker),
            (103, PlatformId::Qemu),
            (104, PlatformId::Firecracker),
            (105, PlatformId::Native),
        ] {
            let platform = platform.build();
            let plain = ClusterBenchmark {
                scatter_fraction: 0.0,
                sweep: vec![ClusterSetting::hashed(16, BASELINE_THETA)],
                ..tiny(LoadBackend::Memcached)
            }
            .run_trial(&platform, &mut SimRng::seed_from(seed))
            .unwrap();
            let quorum = ClusterBenchmark {
                scatter_fraction: 0.0,
                sweep: vec![ClusterSetting::replicated(16, 1, 1)],
                ..tiny(LoadBackend::Memcached)
            }
            .run_trial(&platform, &mut SimRng::seed_from(seed))
            .unwrap();
            let mut relabelled = quorum[0].clone();
            assert_eq!(relabelled.label, "r1");
            relabelled.label = plain[0].label.clone();
            assert_eq!(
                plain[0], relabelled,
                "seed {seed}: R=1 quorum diverged from plain routing"
            );
        }
    }

    #[test]
    fn failover_sweep_conserves_requests_and_stays_lane_invariant() {
        let platform = PlatformId::Qemu.build();
        let reference = ClusterBenchmark {
            shard_cores: 1,
            sweep: ClusterSetting::failover_sweep(),
            ..tiny(LoadBackend::Memcached)
        };
        let base = reference
            .run_trial(&platform, &mut SimRng::seed_from(78))
            .unwrap();
        for p in &base {
            // Conservation across the failure boundary: every issued
            // request resolves exactly once, as a completion or a drop.
            assert_eq!(
                p.completed + p.dropped,
                reference.requests_per_point as u64,
                "{}",
                p.label
            );
            assert!(p.p50_us <= p.p95_us && p.p95_us <= p.p99_us, "{}", p.label);
        }
        for shard_cores in [2usize, 4, 8] {
            let bench = ClusterBenchmark {
                shard_cores,
                ..reference.clone()
            };
            let got = bench
                .run_trial(&platform, &mut SimRng::seed_from(78))
                .unwrap();
            assert_eq!(base, got, "{shard_cores} shard cores diverged");
        }
        for window_us in [1u64, 1_000, 100_000] {
            let bench = ClusterBenchmark {
                lockstep_window_us: window_us,
                shard_cores: 1,
                ..reference.clone()
            };
            let got = bench
                .run_trial(&platform, &mut SimRng::seed_from(78))
                .unwrap();
            assert_eq!(base, got, "window {window_us} us diverged");
        }
    }

    #[test]
    fn kill_then_recover_spikes_drops_then_subsides() {
        let platform = PlatformId::Native.build();
        let bench = ClusterBenchmark {
            requests_per_point: 6_000,
            runs: 1,
            sweep: vec![
                ClusterSetting::failing(16, 2, false),
                ClusterSetting::failing(16, 2, true),
            ],
            ..ClusterBenchmark::quick(LoadBackend::Memcached)
        };
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(79))
            .unwrap();
        let (fail, failrec) = (&points[0], &points[1]);
        for p in [fail, failrec] {
            assert!((0..16).contains(&p.failed_shard), "{}: {p:?}", p.label);
            assert!(p.fail_at_us > 0.0, "{}: {p:?}", p.label);
            assert!(
                p.fail_window_drop_rate > p.pre_fail_drop_rate,
                "{}: the kill must spike the drop rate: {p:?}",
                p.label
            );
            assert!(
                p.failover_handoffs > 0,
                "{}: the ring walk must hand off around the dead shard",
                p.label
            );
        }
        assert_eq!(fail.recover_at_us, -1.0);
        assert!(failrec.recover_at_us > failrec.fail_at_us);
        assert!(
            failrec.post_recover_drop_rate <= failrec.pre_fail_drop_rate + 0.02,
            "the spike must subside after recovery: {failrec:?}"
        );
    }

    #[test]
    fn scatter_p99_grows_with_fanout_and_quorum_widens_the_tail() {
        let platform = PlatformId::Native.build();
        let bench = ClusterBenchmark {
            requests_per_point: 6_000,
            runs: 1,
            sweep: vec![
                ClusterSetting::replicated(16, 3, 1),
                ClusterSetting::scatter(16, 3, 4),
                ClusterSetting::scatter(16, 3, 16),
            ],
            ..ClusterBenchmark::quick(LoadBackend::Memcached)
        };
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(80))
            .unwrap();
        let p99s: Vec<f64> = points.iter().map(|p| p.scatter_p99_us).collect();
        assert!(p99s[0] > 0.0, "the K=1 baseline records scatter sojourns");
        assert!(
            p99s[0] <= p99s[1] && p99s[1] <= p99s[2],
            "scatter p99 must be monotone in the fan-out: {p99s:?}"
        );
    }

    #[test]
    fn traced_failover_point_matches_untraced_and_emits_handoffs() {
        use simcore::obs::ObsConfig;
        let platform = PlatformId::Qemu.build();
        let setting = ClusterSetting::failing(16, 2, true);
        let bench = ClusterBenchmark {
            sweep: vec![setting],
            ..tiny(LoadBackend::Memcached)
        };
        let untraced = bench
            .run_trial(&platform, &mut SimRng::seed_from(81))
            .unwrap();
        let recorder = Recorder::try_new(ObsConfig::new(9, 0.25)).unwrap();
        let (point, obs) = bench
            .run_setting_traced(&platform, &setting, &mut SimRng::seed_from(81), recorder)
            .unwrap();
        assert_eq!(untraced[0], point, "tracing perturbed the failover point");
        let trace = obs.chrome_trace_json("cluster_failover");
        assert!(trace.contains("\"route\""), "router instants missing");
        assert!(
            trace.contains("\"hand-off\""),
            "failover re-routes must record hand-off instants"
        );
    }
}
