//! The ffmpeg video re-encoding benchmark (Fig. 5).
//!
//! The paper loads a 30 MB 1080p clip into memory and re-encodes it from
//! H.264 to H.265 with the `slower` preset, on 16 guest cores with 16
//! threads. The job is compute-bound and SIMD/thread-handoff heavy, which
//! is exactly the combination that exposes custom thread schedulers.

use platforms::subsystems::cpu::ComputeWork;
use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::{Nanos, SimRng};

/// The ffmpeg re-encode benchmark.
#[derive(Debug, Clone, Copy)]
pub struct FfmpegBenchmark {
    /// Number of repetitions (the paper uses at least 10).
    pub runs: usize,
}

impl Default for FfmpegBenchmark {
    fn default() -> Self {
        FfmpegBenchmark { runs: 10 }
    }
}

impl FfmpegBenchmark {
    /// Creates a benchmark with the given repetition count.
    pub fn new(runs: usize) -> Self {
        FfmpegBenchmark { runs: runs.max(1) }
    }

    /// Runs the benchmark on one platform; returns per-run wall-clock times.
    pub fn run(&self, platform: &Platform, rng: &mut SimRng) -> Vec<Nanos> {
        let work = ComputeWork::ffmpeg_reencode();
        (0..self.runs)
            .map(|_| platform.cpu().sample_wall_clock(work, rng))
            .collect()
    }

    /// Runs the benchmark and summarizes it in milliseconds.
    pub fn run_summary_ms(&self, platform: &Platform, rng: &mut SimRng) -> RunningStats {
        self.run(platform, rng)
            .into_iter()
            .map(|d| d.as_millis_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    #[test]
    fn most_platforms_land_near_65_seconds_and_osv_is_the_outlier() {
        let bench = FfmpegBenchmark::new(5);
        let mut rng = SimRng::seed_from(42);
        let mut results = std::collections::BTreeMap::new();
        for id in [
            PlatformId::Native,
            PlatformId::Docker,
            PlatformId::Qemu,
            PlatformId::GvisorPtrace,
            PlatformId::OsvQemu,
        ] {
            let platform = id.build();
            let stats = bench.run_summary_ms(&platform, &mut rng.split(id.label()));
            results.insert(id, stats.mean());
        }
        let native = results[&PlatformId::Native];
        assert!((55_000.0..75_000.0).contains(&native), "native {native} ms");
        for id in [
            PlatformId::Docker,
            PlatformId::Qemu,
            PlatformId::GvisorPtrace,
        ] {
            let v = results[&id];
            assert!(v < native * 1.25, "{id:?} at {v} ms is too far from native");
        }
        assert!(
            results[&PlatformId::OsvQemu] > native * 1.4,
            "osv {} should be a clear outlier",
            results[&PlatformId::OsvQemu]
        );
    }

    #[test]
    fn run_count_is_respected() {
        let bench = FfmpegBenchmark::new(3);
        let platform = PlatformId::Native.build();
        let runs = bench.run(&platform, &mut SimRng::seed_from(1));
        assert_eq!(runs.len(), 3);
    }
}
