//! The fio block-I/O benchmark (Figs. 9 and 10).
//!
//! The throughput phase reads/writes 128 KiB blocks with libaio and
//! `direct=1` against a file twice the guest memory size on a separately
//! attached drive; the latency phase issues 4 KiB random reads. The host
//! page cache is dropped before each run, as the paper found necessary.

use blocksim::engine::IoEngine;
use blocksim::request::{IoPattern, IoProfile};
use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::SimRng;

/// Result of one platform's fio throughput measurement.
#[derive(Debug, Clone)]
pub struct FioThroughput {
    /// Sequential read throughput statistics (MiB/s).
    pub read_mib_s: RunningStats,
    /// Sequential write throughput statistics (MiB/s).
    pub write_mib_s: RunningStats,
}

/// The fio benchmark.
#[derive(Debug, Clone, Copy)]
pub struct FioBenchmark {
    /// Number of repetitions.
    pub runs: usize,
    /// Guest memory size (the test file is twice this).
    pub guest_memory_bytes: u64,
    /// Whether to drop the host page cache before each run (the paper's
    /// remedy; turning this off reproduces the caching pitfall).
    pub drop_host_cache: bool,
}

impl Default for FioBenchmark {
    fn default() -> Self {
        FioBenchmark {
            runs: 10,
            guest_memory_bytes: 16 << 30,
            drop_host_cache: true,
        }
    }
}

impl FioBenchmark {
    /// Creates a benchmark with the given repetition count.
    pub fn new(runs: usize) -> Self {
        FioBenchmark {
            runs: runs.max(1),
            ..FioBenchmark::default()
        }
    }

    /// Disables the pre-run host cache drop (the Section 3.3 pitfall).
    pub fn without_cache_drop(mut self) -> Self {
        self.drop_host_cache = false;
        self
    }

    /// Runs the 128 KiB throughput phase; returns `None` for platforms the
    /// paper excludes (Firecracker, OSv).
    pub fn run_throughput(&self, platform: &Platform, rng: &mut SimRng) -> Option<FioThroughput> {
        if platform.storage().is_excluded() {
            return None;
        }
        let mut read = RunningStats::new();
        let mut write = RunningStats::new();
        for _ in 0..self.runs {
            let mut stack = platform.storage().build_stack();
            let read_profile =
                IoProfile::paper_throughput(IoPattern::SeqRead, self.guest_memory_bytes);
            let write_profile =
                IoProfile::paper_throughput(IoPattern::SeqWrite, self.guest_memory_bytes);
            let w = stack.run_phase(write_profile, IoEngine::Libaio, self.drop_host_cache, rng);
            let r = stack.run_phase(read_profile, IoEngine::Libaio, self.drop_host_cache, rng);
            read.record(r.throughput.mib_per_sec());
            write.record(w.throughput.mib_per_sec());
        }
        Some(FioThroughput {
            read_mib_s: read,
            write_mib_s: write,
        })
    }

    /// Runs the 4 KiB random-read latency phase; returns microsecond
    /// statistics, or `None` for excluded platforms (Firecracker, OSv and —
    /// for this particular figure — gVisor, whose reads the paper could not
    /// keep out of the cache).
    pub fn run_randread_latency(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Option<RunningStats> {
        if platform.storage().is_excluded() {
            return None;
        }
        if platform.id() == platforms::PlatformId::GvisorPtrace
            || platform.id() == platforms::PlatformId::GvisorKvm
        {
            return None;
        }
        let mut stats = RunningStats::new();
        for _ in 0..self.runs {
            let mut stack = platform.storage().build_stack();
            let profile = IoProfile::paper_randread_latency(self.guest_memory_bytes);
            let outcome = stack.run_phase(profile, IoEngine::Libaio, self.drop_host_cache, rng);
            stats.record(outcome.mean_latency.as_micros_f64());
        }
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn quick() -> FioBenchmark {
        FioBenchmark {
            runs: 3,
            guest_memory_bytes: 2 << 30,
            drop_host_cache: true,
        }
    }

    #[test]
    fn throughput_ordering_matches_figure_9() {
        let bench = quick();
        let mut rng = SimRng::seed_from(21);
        let read = |id: PlatformId, rng: &mut SimRng| {
            bench
                .run_throughput(&id.build(), rng)
                .map(|t| t.read_mib_s.mean())
        };
        let native = read(PlatformId::Native, &mut rng).unwrap();
        let docker = read(PlatformId::Docker, &mut rng).unwrap();
        let qemu = read(PlatformId::Qemu, &mut rng).unwrap();
        let chv = read(PlatformId::CloudHypervisor, &mut rng).unwrap();
        let kata = read(PlatformId::Kata, &mut rng).unwrap();
        let gvisor = read(PlatformId::GvisorPtrace, &mut rng).unwrap();
        assert!(docker > native * 0.9, "docker {docker} vs native {native}");
        assert!(qemu > native * 0.85, "qemu {qemu} vs native {native}");
        assert!(chv < native * 0.75, "cloud-hypervisor {chv} should lag");
        assert!(kata < native * 0.65, "kata {kata} should be at most ~half");
        assert!(gvisor < native * 0.85, "gvisor {gvisor} should suffer");
        assert!(read(PlatformId::Firecracker, &mut rng).is_none());
        assert!(read(PlatformId::OsvQemu, &mut rng).is_none());
    }

    #[test]
    fn latency_ordering_matches_figure_10() {
        let bench = quick();
        let mut rng = SimRng::seed_from(22);
        let lat = |id: PlatformId, rng: &mut SimRng| {
            bench
                .run_randread_latency(&id.build(), rng)
                .map(|s| s.mean())
        };
        let native = lat(PlatformId::Native, &mut rng).unwrap();
        let qemu = lat(PlatformId::Qemu, &mut rng).unwrap();
        let kata = lat(PlatformId::Kata, &mut rng).unwrap();
        let kata_vfs = lat(PlatformId::KataVirtioFs, &mut rng).unwrap();
        assert!(qemu > native, "qemu {qemu} vs native {native}");
        assert!(kata > qemu * 1.5, "kata {kata} must be exceptionally poor");
        assert!(kata_vfs < kata, "virtio-fs {kata_vfs} must beat 9p {kata}");
        assert!(lat(PlatformId::GvisorPtrace, &mut rng).is_none());
    }

    #[test]
    fn skipping_the_cache_drop_inflates_hypervisor_results() {
        let mut rng = SimRng::seed_from(23);
        let dropped = quick();
        let undropped = quick().without_cache_drop();
        let platform = PlatformId::Kata.build();
        // Warm-up run to populate the host cache, then measure.
        let _ = undropped.run_throughput(&platform, &mut rng);
        let warm = undropped.run_throughput(&platform, &mut rng).unwrap();
        let cold = dropped.run_throughput(&platform, &mut rng).unwrap();
        assert!(
            warm.read_mib_s.mean() > cold.read_mib_s.mean(),
            "warm {} vs cold {}",
            warm.read_mib_s.mean(),
            cold.read_mib_s.mean()
        );
    }
}
