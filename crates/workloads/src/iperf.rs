//! The iperf3 network throughput benchmark (Fig. 11).
//!
//! The host acts as the client, the guest runs the server, and the figure
//! reports the maximum throughput achieved over 5 runs.

use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::SimRng;

/// The iperf3 benchmark.
#[derive(Debug, Clone, Copy)]
pub struct IperfBenchmark {
    /// Number of runs; the reported value is the maximum.
    pub runs: usize,
}

impl Default for IperfBenchmark {
    fn default() -> Self {
        IperfBenchmark { runs: 5 }
    }
}

impl IperfBenchmark {
    /// Creates a benchmark with the given run count.
    pub fn new(runs: usize) -> Self {
        IperfBenchmark { runs: runs.max(1) }
    }

    /// Runs the benchmark; returns per-run throughput in Gbit/s.
    pub fn run(&self, platform: &Platform, rng: &mut SimRng) -> RunningStats {
        (0..self.runs)
            .map(|_| platform.network().run_stream(rng).throughput.gbit_per_sec())
            .collect()
    }

    /// The figure's headline value: maximum throughput over the runs.
    pub fn run_max_gbit(&self, platform: &Platform, rng: &mut SimRng) -> f64 {
        self.run(platform, rng).max().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    #[test]
    fn throughput_ordering_matches_figure_11() {
        let bench = IperfBenchmark::default();
        let mut rng = SimRng::seed_from(31);
        let gbit = |id: PlatformId, rng: &mut SimRng| bench.run_max_gbit(&id.build(), rng);
        let native = gbit(PlatformId::Native, &mut rng);
        let osv = gbit(PlatformId::OsvQemu, &mut rng);
        let docker = gbit(PlatformId::Docker, &mut rng);
        let lxc = gbit(PlatformId::Lxc, &mut rng);
        let qemu = gbit(PlatformId::Qemu, &mut rng);
        let fc = gbit(PlatformId::Firecracker, &mut rng);
        let osv_fc = gbit(PlatformId::OsvFirecracker, &mut rng);
        let chv = gbit(PlatformId::CloudHypervisor, &mut rng);
        let kata = gbit(PlatformId::Kata, &mut rng);
        let gvisor = gbit(PlatformId::GvisorPtrace, &mut rng);

        assert!((36.0..39.0).contains(&native), "native {native}");
        assert!(osv > native * 0.93 && osv < native, "osv {osv}");
        assert!(
            docker < native * 0.95 && docker > native * 0.85,
            "docker {docker}"
        );
        assert!(lxc < native * 0.95 && lxc > native * 0.85, "lxc {lxc}");
        assert!(qemu < native * 0.82 && qemu > native * 0.68, "qemu {qemu}");
        assert!(osv > qemu * 1.18, "osv should beat qemu by ~25%");
        assert!(
            osv_fc > fc && osv_fc < fc * 1.15,
            "osv-fc {osv_fc} vs fc {fc}"
        );
        assert!(chv < fc, "cloud-hypervisor {chv} vs firecracker {fc}");
        assert!((qemu - kata).abs() < 2.5, "kata {kata} tracks qemu {qemu}");
        assert!(gvisor < 8.0, "gvisor {gvisor} is the extreme outlier");
    }

    #[test]
    fn max_is_at_least_the_mean() {
        let bench = IperfBenchmark::default();
        let p = PlatformId::Docker.build();
        let mut rng = SimRng::seed_from(32);
        let stats = bench.run(&p, &mut rng);
        assert!(stats.max().unwrap() >= stats.mean());
    }
}
