//! # workloads
//!
//! Rust re-implementations of every benchmark workload the paper runs,
//! driving the platform models from the `platforms` crate:
//!
//! | Module | Paper benchmark | Figure |
//! |---|---|---|
//! | [`ffmpeg`] | ffmpeg H.264→H.265 re-encode | Fig. 5 |
//! | [`sysbench_cpu`] | Sysbench CPU prime verification | §3.1 |
//! | [`tinymembench`] | Tinymembench latency + bandwidth | Figs. 6–7 |
//! | [`stream`] | STREAM COPY | Fig. 8 |
//! | [`fio`] | fio 128 KiB throughput + 4 KiB randread latency | Figs. 9–10 |
//! | [`iperf`] | iperf3 streaming throughput | Fig. 11 |
//! | [`netperf`] | netperf request/response p90 latency | Fig. 12 |
//! | [`startup`] | 300-startup boot-time CDFs | Figs. 13–15 |
//! | [`ycsb`] | Memcached + YCSB workload A | Fig. 16 |
//! | [`sysbench_oltp`] | MySQL + sysbench oltp_read_write | Fig. 17 |
//!
//! Beyond the paper, [`loadgen`] adds an **open-loop** load-generation
//! subsystem: Poisson arrivals over a configurable client population drive
//! the memcached/MySQL backends through a bounded admission queue,
//! producing throughput-vs-latency (p50/p95/p99) curves per platform.
//! [`tenancy`] co-locates several such populations on one platform —
//! per-tenant bounded admission queues in front of the weighted
//! deficit-round-robin service-slot scheduler in [`slots`] — to measure
//! isolation *between* workloads (victim-vs-aggressor sweeps, SLO
//! violations, isolation indices). [`pipeline`] replaces the opaque
//! per-request service time with a staged middleware chain — per-stage
//! in/out costs, a warmable auth cache with hit/miss latencies, and
//! short-circuit probabilities — composed on the same admission/slot
//! core, sweeping chain depth and cache hit rate per platform.
//! [`cluster`] scales from the node to the fleet: a routing tier hashes
//! Zipf-skewed keys over N backend shards, each with its own admission
//! queue, slot pool and store cache on its own event-core lane, advancing
//! in deterministic bounded lock-step — sweeping shard count, skew and
//! rebalancing policy. All four sweep workloads implement the
//! [`bench::WorkloadBenchmark`] trait, the grid's one dispatch surface.

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod cluster;
pub mod ffmpeg;
pub mod fio;
pub mod iperf;
pub mod loadgen;
pub mod netperf;
pub mod pipeline;
pub mod slots;
pub mod startup;
pub mod stream;
pub mod sysbench_cpu;
pub mod sysbench_oltp;
pub mod tenancy;
pub mod tinymembench;
pub mod ycsb;

pub use bench::WorkloadBenchmark;
pub use cluster::{ClusterBenchmark, ClusterPoint, ClusterSetting, RoutePolicy};
pub use ffmpeg::FfmpegBenchmark;
pub use fio::FioBenchmark;
pub use iperf::IperfBenchmark;
pub use loadgen::{LoadBackend, LoadPoint, LoadgenBenchmark};
pub use netperf::NetperfBenchmark;
pub use pipeline::{
    MiddlewareChain, PipelineBenchmark, PipelinePoint, PipelineSetting, Stage, Traversal,
};
pub use slots::{Admission, ClassConfig, ServiceProfile, SlotPolicy, SlotPool, StoreSnapshot};
pub use startup::StartupBenchmark;
pub use stream::StreamBenchmark;
pub use sysbench_cpu::SysbenchCpuBenchmark;
pub use sysbench_oltp::OltpBenchmark;
pub use tenancy::{ArrivalProcess, ColocationPoint, TenancyBenchmark, TenantPoint, TenantSpec};
pub use tinymembench::TinymembenchBenchmark;
pub use ycsb::YcsbBenchmark;
