//! Open-loop multi-client load generation (beyond the paper).
//!
//! The paper's macro benchmarks (Figs. 16–17) are closed-loop: a fixed
//! client population issues the next request only after the previous one
//! completes, so they measure peak throughput but say nothing about how a
//! platform behaves **under offered load** — the regime production
//! middleware actually faces. This module adds the missing axis: a Poisson
//! arrival process over a configurable concurrent-client population drives
//! the simulated memcached ([`kvstore`]) or MySQL ([`relstore`]) backend
//! through a bounded admission queue in front of a pool of service slots,
//! and reports the resulting throughput-vs-latency curve (p50/p95/p99
//! sojourn times) at a sweep of offered loads.
//!
//! The mean per-request service times are **the same models the
//! closed-loop paths use** — [`YcsbBenchmark::per_op_service_time`] for
//! memcached and [`OltpBenchmark::per_txn_service_time`] plus
//! [`OltpBenchmark::contention`] for MySQL — and each request samples its
//! own service time from the profile's log-normal distribution around
//! that mean ([`ServiceProfile::service_distribution`]), so the reported
//! tails reflect service-time variance as well as queueing. The slot pool
//! and bounded admission queue are the shared [`crate::slots`] core, which
//! the multi-tenant [`crate::tenancy`] subsystem builds on too.
//!
//! The whole sweep runs on the [`simcore::Simulation`] discrete-event
//! scheduler: arrivals are pre-sampled in bounded chunks
//! ([`Simulation::schedule_batch`]) so the pending-event count stays small
//! even for very large request counts. Within one trial the arrival and
//! service streams are **common random numbers** across the sweep points —
//! the same unit-rate arrival gaps (scaled by the offered rate) and the
//! same service-time sequence — so latency curves are monotone in offered
//! load by coupling, not just in expectation; every stream derives from
//! the cell's own random stream, keeping results bit-identical across any
//! parallel execution schedule.
//!
//! [`YcsbBenchmark::per_op_service_time`]: crate::ycsb::YcsbBenchmark::per_op_service_time
//! [`OltpBenchmark::per_txn_service_time`]: crate::sysbench_oltp::OltpBenchmark::per_txn_service_time
//! [`OltpBenchmark::contention`]: crate::sysbench_oltp::OltpBenchmark::contention

use platforms::Platform;
use simcore::error::SimError;
use simcore::obs::{Recorder, SpanKind};
use simcore::resource::CompletionTimer;
use simcore::stats::{Cdf, RunningStats};
use simcore::{Nanos, SimRng, Simulation};

use crate::slots::{backend_profile, Admission, BackendState, ClassConfig, SlotPolicy, SlotPool};
pub use crate::slots::{LoadBackend, ServiceProfile};

/// Configuration of one open-loop load sweep.
#[derive(Debug, Clone)]
pub struct LoadgenBenchmark {
    /// Which backend to drive.
    pub backend: LoadBackend,
    /// Number of client connections the arrivals are spread over. Each
    /// connection keeps its own issued/completed/dropped accounting; the
    /// population can range from hundreds to millions.
    pub clients: usize,
    /// Requests offered per sweep point (the measurement window is sized so
    /// exactly this many arrivals occur).
    pub requests_per_point: usize,
    /// Offered load at each sweep point, as a fraction of the platform's
    /// estimated saturation capacity (e.g. `0.95` = 95% utilization).
    pub load_points: Vec<f64>,
    /// Bounded admission queue depth in front of the service slots;
    /// arrivals that find the queue full are dropped (and counted).
    pub queue_capacity: usize,
    /// Number of parallel service slots (the kvstore has 16 shards; the
    /// relational engine is modeled with the same pool width, derated by
    /// its USL contention profile).
    pub servers: usize,
    /// Measurement repetitions (trials) per sweep point.
    pub runs: usize,
    /// Execute one real backend operation per this many admitted requests
    /// (1 = every request), keeping the data structures honest without
    /// making huge sweeps quadratic.
    pub op_sample_every: u64,
}

impl LoadgenBenchmark {
    /// The full-scale configuration for a backend.
    pub fn new(backend: LoadBackend) -> Self {
        LoadgenBenchmark {
            backend,
            clients: 10_000,
            requests_per_point: 20_000,
            load_points: vec![0.2, 0.4, 0.6, 0.8, 0.95],
            queue_capacity: 8_192,
            servers: 16,
            runs: 5,
            op_sample_every: 4,
        }
    }

    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick(backend: LoadBackend) -> Self {
        LoadgenBenchmark {
            clients: 256,
            requests_per_point: 2_500,
            runs: 3,
            ..LoadgenBenchmark::new(backend)
        }
    }

    /// The platform's service profile under this configuration: the
    /// effective mean per-slot service time and the resulting saturation
    /// capacity in requests per second.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate profile — an
    /// empty slot pool, or a platform derate that collapses the service
    /// time to zero (which would imply infinite capacity).
    pub fn service_profile(&self, platform: &Platform) -> Result<ServiceProfile, SimError> {
        backend_profile(self.backend, platform, self.servers)
    }

    /// Runs one sweep point at `fraction` of the platform's saturation
    /// capacity.
    ///
    /// # Errors
    ///
    /// Propagates the degenerate-profile error of
    /// [`LoadgenBenchmark::service_profile`].
    pub fn run_point(
        &self,
        platform: &Platform,
        fraction: f64,
        rng: &mut SimRng,
    ) -> Result<LoadPoint, SimError> {
        let profile = self.service_profile(platform)?;
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        Ok(self
            .run_point_with_profile(&profile, fraction, arrival, service, rng, None)
            .0)
    }

    /// Runs one sweep point with a trace [`Recorder`] attached and
    /// returns it alongside the measurement, loaded with admission-wait
    /// and slot-service spans for the sampled requests, the windowed
    /// pool time-series, and the run's event-core counter profile.
    ///
    /// Tracing is observation only: the recorder consumes no random
    /// draws (span sampling is the stateless [`simcore::rng::mix`] of
    /// the recorder's seed and the arrival index), so the returned
    /// [`LoadPoint`] is bit-identical to the untraced
    /// [`LoadgenBenchmark::run_point`] of the same streams.
    ///
    /// # Errors
    ///
    /// Propagates the degenerate-profile error of
    /// [`LoadgenBenchmark::service_profile`].
    pub fn run_point_traced(
        &self,
        platform: &Platform,
        fraction: f64,
        rng: &mut SimRng,
        recorder: Recorder,
    ) -> Result<(LoadPoint, Recorder), SimError> {
        let profile = self.service_profile(platform)?;
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        let (point, obs) =
            self.run_point_with_profile(&profile, fraction, arrival, service, rng, Some(recorder));
        Ok((point, obs.expect("the recorder threads through the run")))
    }

    /// Runs one sweep point against an already-computed service profile
    /// (the profile is load-independent, so a sweep computes it once).
    ///
    /// `arrival_rng` samples unit-rate interarrival gaps (scaled by the
    /// offered rate) and `service_rng` the per-request service times;
    /// passing the same streams at every fraction of a sweep yields the
    /// common-random-numbers coupling the monotonicity of the curves
    /// relies on. `misc_rng` covers the timing-irrelevant draws
    /// (connection attribution, sampled backend operations).
    fn run_point_with_profile(
        &self,
        profile: &ServiceProfile,
        fraction: f64,
        arrival_rng: SimRng,
        service_rng: SimRng,
        misc_rng: &mut SimRng,
        obs: Option<Recorder>,
    ) -> (LoadPoint, Option<Recorder>) {
        let offered_per_sec = profile.capacity_per_sec() * fraction.max(0.0);
        let mut sim: Simulation<LoadSim> = Simulation::new();
        let mut state = LoadSim::new(
            self,
            profile,
            offered_per_sec,
            arrival_rng,
            service_rng,
            misc_rng.split(MISC_STREAM),
            obs,
        );
        // Kick off the batched Poisson arrival source.
        sim.schedule_at(Nanos::ZERO, |sim, st: &mut LoadSim| st.generate(sim));
        // Probe the in-flight population (in service + queued) at a fixed
        // cadence across the expected arrival window, yielding the
        // time-averaged depth alongside the event-driven peak.
        let probes = 64;
        let window =
            Nanos::from_secs_f64(self.requests_per_point as f64 / offered_per_sec.max(1.0));
        let period = window / probes;
        sim.schedule_periodic(period, period, probes, |_, st: &mut LoadSim| {
            st.in_flight_probe.record(st.pool.in_flight() as f64);
        });
        sim.run(&mut state);
        if let Some(obs) = state.obs.as_mut() {
            // The wheel profile of one sweep point: the simulation's own
            // queue plus the batched completion timer's.
            obs.set_core_counters(sim.counters().merged(state.completions.counters()));
        }
        let obs = state.obs.take();
        (state.into_point(fraction, offered_per_sec, sim.now()), obs)
    }

    /// Runs the whole offered-load sweep once and returns one
    /// [`LoadPoint`] per configured fraction.
    ///
    /// This is the unit the parallel executor shards on: each trial sweeps
    /// every offered load once from its own derived random stream, and the
    /// harness merges the per-trial samples into the figure's mean/std.
    ///
    /// # Errors
    ///
    /// Propagates the degenerate-profile error of
    /// [`LoadgenBenchmark::service_profile`].
    pub fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<LoadPoint>, SimError> {
        let profile = self.service_profile(platform)?;
        // Common random numbers: every sweep point replays the same
        // unit-rate arrival gaps and the same service-time sequence.
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        Ok(self
            .load_points
            .iter()
            .map(|&fraction| {
                self.run_point_with_profile(
                    &profile,
                    fraction,
                    arrival.clone(),
                    service.clone(),
                    rng,
                    None,
                )
                .0
            })
            .collect())
    }
}

/// One measured point of a throughput-vs-latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load as a fraction of the saturation capacity.
    pub offered_fraction: f64,
    /// Offered load in requests per second.
    pub offered_per_sec: f64,
    /// Achieved (completed) throughput in requests per second.
    pub achieved_per_sec: f64,
    /// Median sojourn time (queueing + service) in microseconds.
    pub p50_us: f64,
    /// 95th-percentile sojourn time in microseconds.
    pub p95_us: f64,
    /// 99th-percentile sojourn time in microseconds.
    pub p99_us: f64,
    /// Mean sojourn time in microseconds.
    pub mean_us: f64,
    /// Requests completed within the measurement window.
    pub completed: u64,
    /// Requests dropped by the bounded admission queue.
    pub dropped: u64,
    /// Peak number of in-flight requests (in service + queued).
    pub peak_in_flight: usize,
    /// Time-averaged in-flight depth, from fixed-cadence probes across the
    /// arrival window.
    pub mean_in_flight: f64,
}

/// Per-connection accounting of the open-loop client population.
#[derive(Debug, Default, Clone, Copy)]
struct ConnState {
    issued: u64,
    completed: u64,
    dropped: u64,
}

/// A request waiting in the admission queue or in service.
#[derive(Debug, Clone, Copy)]
struct Request {
    /// Deterministic arrival index, the identity trace sampling keys on.
    id: u64,
    arrived: Nanos,
    conn: u32,
}

/// Arrivals are pre-sampled and enqueued in chunks of this size, bounding
/// the scheduler's pending-event count regardless of the sweep size.
/// Shared with [`crate::pipeline`], whose zero-stage chain must replay
/// this module's event schedule bit for bit.
pub(crate) const ARRIVAL_CHUNK: u64 = 512;

/// Label of the per-point miscellaneous stream (connection attribution,
/// sampled backend operations). [`crate::pipeline`] splits the same label
/// so a zero-stage chain consumes the cell stream exactly like this
/// module does — the bit-for-bit degenerate-chain contract.
pub(crate) const MISC_STREAM: &str = "loadgen";

/// The discrete-event state of one sweep point.
struct LoadSim {
    arrival_rng: SimRng,
    service_rng: SimRng,
    misc_rng: SimRng,
    profile: ServiceProfile,
    pool: SlotPool<Request>,
    offered_per_sec: f64,
    remaining_arrivals: u64,
    conns: Vec<ConnState>,
    latencies_us: Vec<f64>,
    completed: u64,
    dropped: u64,
    peak_in_flight: usize,
    backend: BackendState,
    op_sample_every: u64,
    admitted: u64,
    in_flight_probe: RunningStats,
    /// Batched completion drain: in-service requests wait here instead of
    /// each owning a scheduled closure; coalesced wakes drain a whole
    /// timing-wheel slot per clock advance.
    completions: CompletionTimer<Request>,
    drain_buf: Vec<(Nanos, Request)>,
    dispatch_buf: Vec<(usize, Nanos, Request)>,
    /// Arrival indices double as trace-sampling identities.
    next_request: u64,
    /// `None` is the zero-cost untraced path.
    obs: Option<Recorder>,
    obs_lane: u32,
}

impl LoadSim {
    fn new(
        bench: &LoadgenBenchmark,
        profile: &ServiceProfile,
        offered_per_sec: f64,
        arrival_rng: SimRng,
        service_rng: SimRng,
        misc_rng: SimRng,
        mut obs: Option<Recorder>,
    ) -> Self {
        let obs_lane = obs.as_mut().map_or(0, |o| o.lane("pool"));
        let pool = SlotPool::new(
            profile.servers,
            SlotPolicy::FifoArrival,
            vec![ClassConfig {
                weight: 1,
                queue_capacity: bench.queue_capacity,
                mean_cost: profile.service_time,
            }],
        )
        .expect("a validated service profile yields a valid single-class pool");
        LoadSim {
            arrival_rng,
            service_rng,
            misc_rng,
            profile: *profile,
            pool,
            offered_per_sec: offered_per_sec.max(1.0),
            remaining_arrivals: bench.requests_per_point as u64,
            conns: vec![ConnState::default(); bench.clients.max(1)],
            latencies_us: Vec::with_capacity(bench.requests_per_point),
            completed: 0,
            dropped: 0,
            peak_in_flight: 0,
            backend: BackendState::build(bench.backend),
            op_sample_every: bench.op_sample_every.max(1),
            admitted: 0,
            in_flight_probe: RunningStats::new(),
            completions: CompletionTimer::new(),
            drain_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            next_request: 0,
            obs,
            obs_lane,
        }
    }

    /// Samples the next chunk of Poisson interarrival gaps and enqueues one
    /// arrival event per gap; reschedules itself after the chunk's last
    /// arrival while arrivals remain.
    fn generate(&mut self, sim: &mut Simulation<LoadSim>) {
        let n = self.remaining_arrivals.min(ARRIVAL_CHUNK);
        if n == 0 {
            return;
        }
        self.remaining_arrivals -= n;
        let mut offset = Nanos::ZERO;
        let mut batch = Vec::with_capacity(n as usize);
        for _ in 0..n {
            // Unit-rate exponential gaps scaled by the offered rate: the
            // same arrival stream compresses uniformly as load grows.
            offset +=
                Nanos::from_secs_f64(self.arrival_rng.exponential(1.0) / self.offered_per_sec);
            batch.push((offset, |sim: &mut Simulation<LoadSim>, st: &mut LoadSim| {
                st.arrive(sim)
            }));
        }
        sim.schedule_batch(batch);
        if self.remaining_arrivals > 0 {
            // Scheduled after the chunk's last arrival (FIFO among equal
            // timestamps), so the next chunk continues from its clock.
            sim.schedule_in(offset, |sim, st: &mut LoadSim| st.generate(sim));
        }
    }

    /// One open-loop arrival: attribute it to a connection, run the sampled
    /// real-backend operation, then admit, enqueue or drop.
    fn arrive(&mut self, sim: &mut Simulation<LoadSim>) {
        let conn = self.misc_rng.index(self.conns.len()) as u32;
        self.conns[conn as usize].issued += 1;
        let request = Request {
            id: self.next_request,
            arrived: sim.now(),
            conn,
        };
        self.next_request += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.count_arrival(self.obs_lane, request.arrived);
        }
        match self.pool.offer(0, request.arrived, request) {
            Admission::Dispatched => {
                self.admit();
                self.schedule_completion(sim, request);
            }
            Admission::Queued => self.admit(),
            Admission::Dropped => {
                self.conns[conn as usize].dropped += 1;
                self.dropped += 1;
                if let Some(obs) = self.obs.as_mut() {
                    obs.count_drop(self.obs_lane, request.arrived);
                }
            }
        }
        self.peak_in_flight = self.peak_in_flight.max(self.pool.in_flight());
        if let Some(obs) = self.obs.as_mut() {
            obs.gauge(
                self.obs_lane,
                request.arrived,
                self.pool.queued_total(),
                self.pool.busy(),
            );
        }
    }

    fn admit(&mut self) {
        self.admitted += 1;
        if self.admitted % self.op_sample_every == 0 {
            self.backend.execute(&mut self.misc_rng);
        }
    }

    /// Samples the dispatched request's service time and registers its
    /// completion with the batched timer, arming a scheduler wake only
    /// when it became the earliest pending completion.
    fn schedule_completion(&mut self, sim: &mut Simulation<LoadSim>, request: Request) {
        let service = self.profile.sample_service_time(&mut self.service_rng);
        let now = sim.now();
        if let Some(obs) = self.obs.as_mut() {
            // Dispatch is where both phases become known: the admission
            // wait just ended (zero-length when the arrival went straight
            // to a free slot) and the slot occupancy begins.
            obs.span(
                SpanKind::AdmissionWait,
                request.id,
                self.obs_lane,
                request.arrived,
                now,
            );
            obs.span(
                SpanKind::SlotService,
                request.id,
                self.obs_lane,
                now,
                now + service,
            );
        }
        if let Some(wake) = self.completions.schedule(now + service, request) {
            sim.schedule_at(wake, |sim, st: &mut LoadSim| st.drain_completions(sim));
        }
    }

    /// One completion wake: drains every service completion due in this
    /// wheel slot, records their sojourn times, folds the whole batch into
    /// the pool, and starts service on the requests the freed slots pulled
    /// from the queue.
    fn drain_completions(&mut self, sim: &mut Simulation<LoadSim>) {
        let now = sim.now();
        let mut due = std::mem::take(&mut self.drain_buf);
        if let Some(wake) = self.completions.wake(now, &mut due) {
            sim.schedule_at(wake, |sim, st: &mut LoadSim| st.drain_completions(sim));
        }
        for &(at, request) in &due {
            debug_assert_eq!(at, now, "completions drain exactly at their tick");
            self.latencies_us
                .push((now - request.arrived).as_micros_f64());
            self.conns[request.conn as usize].completed += 1;
            self.completed += 1;
            if let Some(obs) = self.obs.as_mut() {
                obs.count_completion(self.obs_lane, now);
            }
        }
        let mut dispatched = std::mem::take(&mut self.dispatch_buf);
        self.pool
            .finish_batch(due.iter().map(|_| 0), &mut dispatched);
        due.clear();
        self.drain_buf = due;
        for (_, _, next) in dispatched.drain(..) {
            self.schedule_completion(sim, next);
        }
        self.dispatch_buf = dispatched;
    }

    fn into_point(self, fraction: f64, offered_per_sec: f64, end: Nanos) -> LoadPoint {
        let issued: u64 = self.conns.iter().map(|c| c.issued).sum();
        debug_assert_eq!(issued, self.completed + self.dropped);
        debug_assert_eq!(self.pool.counters(0).dropped, self.dropped);
        let cdf = Cdf::from_samples(self.latencies_us)
            .expect("a sweep point always completes at least one request");
        let duration = end.as_secs_f64().max(f64::MIN_POSITIVE);
        LoadPoint {
            offered_fraction: fraction,
            offered_per_sec,
            achieved_per_sec: self.completed as f64 / duration,
            p50_us: cdf.percentile(50.0),
            p95_us: cdf.percentile(95.0),
            p99_us: cdf.percentile(99.0),
            mean_us: cdf.mean(),
            completed: self.completed,
            dropped: self.dropped,
            peak_in_flight: self.peak_in_flight,
            mean_in_flight: self.in_flight_probe.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn tiny(backend: LoadBackend) -> LoadgenBenchmark {
        LoadgenBenchmark {
            clients: 64,
            requests_per_point: 600,
            runs: 1,
            ..LoadgenBenchmark::quick(backend)
        }
    }

    #[test]
    fn percentiles_are_ordered_at_every_point() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(81))
            .unwrap();
        assert_eq!(points.len(), bench.load_points.len());
        for p in &points {
            assert!(
                p.p50_us <= p.p95_us && p.p95_us <= p.p99_us,
                "percentiles out of order at fraction {}: {p:?}",
                p.offered_fraction
            );
            assert!(p.p50_us > 0.0);
            assert!(p.completed > 0);
        }
    }

    #[test]
    fn latency_grows_toward_saturation() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Native.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(82))
            .unwrap();
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.mean_us > first.mean_us,
            "mean sojourn must inflate near saturation: {} -> {}",
            first.mean_us,
            last.mean_us
        );
        assert!(last.p99_us >= first.p99_us);
        assert!(
            last.mean_in_flight > first.mean_in_flight,
            "time-averaged in-flight depth must grow with load: {} -> {}",
            first.mean_in_flight,
            last.mean_in_flight
        );
        assert!(first.mean_in_flight > 0.0);
    }

    #[test]
    fn common_random_numbers_make_every_percentile_monotone() {
        // The arrival/service streams are shared across the sweep points,
        // so not just the mean but each reported percentile is monotone in
        // offered load by coupling.
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Qemu.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(99))
            .unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].p50_us >= pair[0].p50_us, "{pair:?}");
            assert!(pair[1].p95_us >= pair[0].p95_us, "{pair:?}");
            assert!(pair[1].p99_us >= pair[0].p99_us, "{pair:?}");
        }
    }

    #[test]
    fn overload_drops_requests_at_the_bounded_queue() {
        let mut bench = tiny(LoadBackend::Memcached);
        bench.queue_capacity = 4;
        bench.load_points = vec![3.0]; // 3x capacity: queue must overflow
        let platform = PlatformId::Native.build();
        let point = &bench
            .run_trial(&platform, &mut SimRng::seed_from(83))
            .unwrap()[0];
        assert!(point.dropped > 0, "overload must hit the admission bound");
        assert!(
            point.achieved_per_sec < point.offered_per_sec,
            "achieved {} must fall below offered {}",
            point.achieved_per_sec,
            point.offered_per_sec
        );
        assert!(point.peak_in_flight <= bench.servers + bench.queue_capacity);
    }

    #[test]
    fn per_connection_accounting_balances() {
        let bench = tiny(LoadBackend::Mysql);
        let platform = PlatformId::Qemu.build();
        let profile = bench.service_profile(&platform).unwrap();
        let offered = profile.capacity_per_sec() * 0.8;
        let mut rng = SimRng::seed_from(84);
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        let mut sim: Simulation<LoadSim> = Simulation::new();
        let mut state = LoadSim::new(
            &bench,
            &profile,
            offered,
            arrival,
            service,
            rng.split("m"),
            None,
        );
        sim.schedule_at(Nanos::ZERO, |sim, st: &mut LoadSim| st.generate(sim));
        sim.run(&mut state);
        let issued: u64 = state.conns.iter().map(|c| c.issued).sum();
        let completed: u64 = state.conns.iter().map(|c| c.completed).sum();
        let dropped: u64 = state.conns.iter().map(|c| c.dropped).sum();
        assert_eq!(issued, bench.requests_per_point as u64);
        assert_eq!(issued, completed + dropped);
        assert!(
            state.conns.iter().filter(|c| c.issued > 0).count() > bench.clients / 2,
            "arrivals must spread over the connection population"
        );
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Firecracker.build();
        let a = bench
            .run_trial(&platform, &mut SimRng::seed_from(85))
            .unwrap();
        let b = bench
            .run_trial(&platform, &mut SimRng::seed_from(85))
            .unwrap();
        assert_eq!(a, b);
        let c = bench
            .run_trial(&platform, &mut SimRng::seed_from(86))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn slower_platforms_pay_higher_latency_under_the_same_fraction() {
        let bench = tiny(LoadBackend::Memcached);
        let native = bench
            .run_trial(&PlatformId::Native.build(), &mut SimRng::seed_from(87))
            .unwrap();
        let gvisor = bench
            .run_trial(
                &PlatformId::GvisorPtrace.build(),
                &mut SimRng::seed_from(87),
            )
            .unwrap();
        // Same utilization fraction, but gVisor's per-op service time is
        // far larger, so its absolute sojourn times must dominate.
        for (n, g) in native.iter().zip(&gvisor) {
            assert!(
                g.p50_us > n.p50_us,
                "gvisor p50 {} must exceed native {}",
                g.p50_us,
                n.p50_us
            );
        }
    }

    #[test]
    fn mysql_profile_is_slower_than_memcached() {
        let platform = PlatformId::Docker.build();
        let kv = LoadgenBenchmark::quick(LoadBackend::Memcached)
            .service_profile(&platform)
            .unwrap();
        let sql = LoadgenBenchmark::quick(LoadBackend::Mysql)
            .service_profile(&platform)
            .unwrap();
        assert!(sql.service_time > kv.service_time);
        assert!(sql.capacity_per_sec() < kv.capacity_per_sec());
    }

    #[test]
    fn tracing_is_observation_only_and_rate_zero_records_no_spans() {
        use simcore::obs::ObsConfig;
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let plain = bench
            .run_point(&platform, 0.8, &mut SimRng::seed_from(90))
            .unwrap();
        let recorder = Recorder::try_new(ObsConfig::new(7, 0.25)).unwrap();
        let (traced, recorder) = bench
            .run_point_traced(&platform, 0.8, &mut SimRng::seed_from(90), recorder)
            .unwrap();
        assert_eq!(plain, traced, "the recorder must not perturb the run");
        assert!(recorder.spans_accepted() > 0);
        assert!(recorder.timeline_json("load", 90).contains("\"core\""));
        let zero = Recorder::try_new(ObsConfig::new(7, 0.0)).unwrap();
        let (_, zero) = bench
            .run_point_traced(&platform, 0.8, &mut SimRng::seed_from(90), zero)
            .unwrap();
        assert_eq!(zero.spans_accepted(), 0, "rate 0 records nothing");
    }

    #[test]
    fn an_empty_slot_pool_is_a_loud_configuration_error() {
        let bench = LoadgenBenchmark {
            servers: 0,
            ..tiny(LoadBackend::Memcached)
        };
        let platform = PlatformId::Native.build();
        assert!(bench.service_profile(&platform).is_err());
        assert!(bench
            .run_trial(&platform, &mut SimRng::seed_from(88))
            .is_err());
    }
}
