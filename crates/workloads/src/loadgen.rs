//! Open-loop multi-client load generation (beyond the paper).
//!
//! The paper's macro benchmarks (Figs. 16–17) are closed-loop: a fixed
//! client population issues the next request only after the previous one
//! completes, so they measure peak throughput but say nothing about how a
//! platform behaves **under offered load** — the regime production
//! middleware actually faces. This module adds the missing axis: a Poisson
//! arrival process over a configurable concurrent-client population drives
//! the simulated memcached ([`kvstore`]) or MySQL ([`relstore`]) backend
//! through a bounded admission queue in front of a pool of service slots,
//! and reports the resulting throughput-vs-latency curve (p50/p95/p99
//! sojourn times) at a sweep of offered loads.
//!
//! The per-request service times are **the same models the closed-loop
//! paths use** — [`YcsbBenchmark::per_op_service_time`] for memcached and
//! [`OltpBenchmark::per_txn_service_time`] plus
//! [`OltpBenchmark::contention`] for MySQL — so the open- and closed-loop
//! views of one platform are mutually consistent.
//!
//! The whole sweep runs on the [`simcore::Simulation`] discrete-event
//! scheduler: arrivals are pre-sampled in bounded chunks
//! ([`Simulation::schedule_batch`]) so the pending-event count stays small
//! even for very large request counts, and every sample is drawn from the
//! cell's own derived random stream, keeping results bit-identical across
//! any parallel execution schedule.

use std::collections::VecDeque;

use kvstore::{Store, StoreConfig};
use platforms::Platform;
use relstore::{Database, Table};
use simcore::stats::{Cdf, RunningStats};
use simcore::{Nanos, SimRng, Simulation};

use crate::sysbench_oltp::OltpBenchmark;
use crate::ycsb::YcsbBenchmark;

/// Which simulated backend the generated load drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBackend {
    /// The Memcached-like key-value store behind Fig. 16.
    Memcached,
    /// The MySQL-like relational engine behind Fig. 17.
    Mysql,
}

/// Configuration of one open-loop load sweep.
#[derive(Debug, Clone)]
pub struct LoadgenBenchmark {
    /// Which backend to drive.
    pub backend: LoadBackend,
    /// Number of client connections the arrivals are spread over. Each
    /// connection keeps its own issued/completed/dropped accounting; the
    /// population can range from hundreds to millions.
    pub clients: usize,
    /// Requests offered per sweep point (the measurement window is sized so
    /// exactly this many arrivals occur).
    pub requests_per_point: usize,
    /// Offered load at each sweep point, as a fraction of the platform's
    /// estimated saturation capacity (e.g. `0.95` = 95% utilization).
    pub load_points: Vec<f64>,
    /// Bounded admission queue depth in front of the service slots;
    /// arrivals that find the queue full are dropped (and counted).
    pub queue_capacity: usize,
    /// Number of parallel service slots (the kvstore has 16 shards; the
    /// relational engine is modeled with the same pool width, derated by
    /// its USL contention profile).
    pub servers: usize,
    /// Measurement repetitions (trials) per sweep point.
    pub runs: usize,
    /// Execute one real backend operation per this many admitted requests
    /// (1 = every request), keeping the data structures honest without
    /// making huge sweeps quadratic.
    pub op_sample_every: u64,
}

impl LoadgenBenchmark {
    /// The full-scale configuration for a backend.
    pub fn new(backend: LoadBackend) -> Self {
        LoadgenBenchmark {
            backend,
            clients: 10_000,
            requests_per_point: 20_000,
            load_points: vec![0.2, 0.4, 0.6, 0.8, 0.95],
            queue_capacity: 8_192,
            servers: 16,
            runs: 5,
            op_sample_every: 4,
        }
    }

    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick(backend: LoadBackend) -> Self {
        LoadgenBenchmark {
            clients: 256,
            requests_per_point: 2_500,
            runs: 3,
            ..LoadgenBenchmark::new(backend)
        }
    }

    /// The platform's service profile under this configuration: the
    /// effective per-slot service time and the resulting saturation
    /// capacity in requests per second.
    pub fn service_profile(&self, platform: &Platform) -> ServiceProfile {
        let servers = self.servers.max(1);
        match self.backend {
            LoadBackend::Memcached => {
                // Identical per-operation cost model to the YCSB path; the
                // slot pool derates by the platform's parallel efficiency.
                let per_op = YcsbBenchmark::default().per_op_service_time(platform);
                let eff = platform.cpu().parallel_efficiency(servers).max(1e-6);
                let service_time = per_op.scale(1.0 / eff);
                ServiceProfile::new(service_time, servers)
            }
            LoadBackend::Mysql => {
                // Identical per-transaction cost model to the OLTP path;
                // the pool derates by the combined workload + scheduler
                // USL contention at this concurrency.
                let bench = OltpBenchmark::default();
                let per_txn = bench.per_txn_service_time(platform);
                let usl_capacity = OltpBenchmark::contention(platform)
                    .capacity(servers)
                    .max(1e-6);
                let service_time = per_txn.scale(servers as f64 / usl_capacity);
                ServiceProfile::new(service_time, servers)
            }
        }
    }

    /// Runs one sweep point at `fraction` of the platform's saturation
    /// capacity.
    pub fn run_point(&self, platform: &Platform, fraction: f64, rng: &mut SimRng) -> LoadPoint {
        self.run_point_with_profile(&self.service_profile(platform), fraction, rng)
    }

    /// Runs one sweep point against an already-computed service profile
    /// (the profile is load-independent, so a sweep computes it once).
    fn run_point_with_profile(
        &self,
        profile: &ServiceProfile,
        fraction: f64,
        rng: &mut SimRng,
    ) -> LoadPoint {
        let offered_per_sec = profile.capacity_per_sec() * fraction.max(0.0);
        let mut sim: Simulation<LoadSim> = Simulation::new();
        let mut state = LoadSim::new(self, profile, offered_per_sec, rng.split("loadgen"));
        // Kick off the batched Poisson arrival source.
        sim.schedule_at(Nanos::ZERO, |sim, st: &mut LoadSim| st.generate(sim));
        // Probe the in-flight population (in service + queued) at a fixed
        // cadence across the expected arrival window, yielding the
        // time-averaged depth alongside the event-driven peak.
        let probes = 64;
        let window =
            Nanos::from_secs_f64(self.requests_per_point as f64 / offered_per_sec.max(1.0));
        let period = window / probes;
        sim.schedule_periodic(period, period, probes, |_, st: &mut LoadSim| {
            st.in_flight_probe.record((st.busy + st.queue.len()) as f64);
        });
        sim.run(&mut state);
        state.into_point(fraction, offered_per_sec, sim.now())
    }

    /// Runs the whole offered-load sweep once and returns one
    /// [`LoadPoint`] per configured fraction.
    ///
    /// This is the unit the parallel executor shards on: each trial sweeps
    /// every offered load once from its own derived random stream, and the
    /// harness merges the per-trial samples into the figure's mean/std.
    pub fn run_trial(&self, platform: &Platform, rng: &mut SimRng) -> Vec<LoadPoint> {
        let profile = self.service_profile(platform);
        self.load_points
            .iter()
            .map(|&fraction| self.run_point_with_profile(&profile, fraction, rng))
            .collect()
    }
}

/// The effective service model of one platform under a load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceProfile {
    /// Effective service time of one request on one slot.
    pub service_time: Nanos,
    /// Number of parallel service slots.
    pub servers: usize,
}

impl ServiceProfile {
    fn new(service_time: Nanos, servers: usize) -> Self {
        ServiceProfile {
            service_time: service_time.max(Nanos::from_nanos(1)),
            servers,
        }
    }

    /// The saturation capacity of the slot pool in requests per second.
    pub fn capacity_per_sec(&self) -> f64 {
        self.servers as f64 / self.service_time.as_secs_f64()
    }
}

/// One measured point of a throughput-vs-latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load as a fraction of the saturation capacity.
    pub offered_fraction: f64,
    /// Offered load in requests per second.
    pub offered_per_sec: f64,
    /// Achieved (completed) throughput in requests per second.
    pub achieved_per_sec: f64,
    /// Median sojourn time (queueing + service) in microseconds.
    pub p50_us: f64,
    /// 95th-percentile sojourn time in microseconds.
    pub p95_us: f64,
    /// 99th-percentile sojourn time in microseconds.
    pub p99_us: f64,
    /// Mean sojourn time in microseconds.
    pub mean_us: f64,
    /// Requests completed within the measurement window.
    pub completed: u64,
    /// Requests dropped by the bounded admission queue.
    pub dropped: u64,
    /// Peak number of in-flight requests (in service + queued).
    pub peak_in_flight: usize,
    /// Time-averaged in-flight depth, from fixed-cadence probes across the
    /// arrival window.
    pub mean_in_flight: f64,
}

/// Per-connection accounting of the open-loop client population.
#[derive(Debug, Default, Clone, Copy)]
struct ConnState {
    issued: u64,
    completed: u64,
    dropped: u64,
}

/// A request waiting in the admission queue or in service.
#[derive(Debug, Clone, Copy)]
struct Request {
    arrived: Nanos,
    conn: u32,
}

/// Sampled real-backend execution so the simulated load keeps the actual
/// data structures honest (the same reasoning as the YCSB/OLTP paths).
enum BackendState {
    Kv {
        store: Store,
        records: usize,
    },
    Sql {
        db: Database,
        table: Table,
        rows: u64,
        conflicts: u64,
    },
}

impl BackendState {
    fn build(backend: LoadBackend) -> BackendState {
        match backend {
            LoadBackend::Memcached => {
                let records = 4_096;
                let store = Store::new(StoreConfig::default());
                for i in 0..records {
                    store.set(format!("load{i:06}").as_bytes(), vec![b'x'; 100]);
                }
                BackendState::Kv { store, records }
            }
            LoadBackend::Mysql => {
                let rows = 2_000;
                let db = Database::new();
                let table = db.populate_sysbench(1, rows).remove(0);
                BackendState::Sql {
                    db,
                    table,
                    rows,
                    conflicts: 0,
                }
            }
        }
    }

    fn execute(&mut self, rng: &mut SimRng) {
        match self {
            BackendState::Kv { store, records } => {
                let key = format!("load{:06}", rng.index(*records));
                if rng.chance(0.5) {
                    let _ = store.get(key.as_bytes());
                } else {
                    store.set(key.as_bytes(), vec![b'y'; 100]);
                }
            }
            BackendState::Sql {
                db,
                table,
                rows,
                conflicts,
            } => {
                let target = 1 + rng.index(*rows as usize) as u64;
                let mut txn = db.begin();
                let ok = txn
                    .select(table, target)
                    .and_then(|_| txn.update(table, target, rng.index(1_000) as u64));
                match ok {
                    Ok(_) => txn.commit(),
                    Err(_) => {
                        *conflicts += 1;
                        txn.rollback();
                    }
                }
            }
        }
    }
}

/// Arrivals are pre-sampled and enqueued in chunks of this size, bounding
/// the scheduler's pending-event count regardless of the sweep size.
const ARRIVAL_CHUNK: u64 = 512;

/// The discrete-event state of one sweep point.
struct LoadSim {
    rng: SimRng,
    service_time: Nanos,
    servers: usize,
    offered_per_sec: f64,
    remaining_arrivals: u64,
    busy: usize,
    queue: VecDeque<Request>,
    queue_capacity: usize,
    conns: Vec<ConnState>,
    latencies_us: Vec<f64>,
    completed: u64,
    dropped: u64,
    peak_in_flight: usize,
    backend: BackendState,
    op_sample_every: u64,
    admitted: u64,
    in_flight_probe: RunningStats,
}

impl LoadSim {
    fn new(
        bench: &LoadgenBenchmark,
        profile: &ServiceProfile,
        offered_per_sec: f64,
        rng: SimRng,
    ) -> Self {
        LoadSim {
            rng,
            service_time: profile.service_time,
            servers: profile.servers,
            offered_per_sec: offered_per_sec.max(1.0),
            remaining_arrivals: bench.requests_per_point as u64,
            busy: 0,
            queue: VecDeque::new(),
            queue_capacity: bench.queue_capacity,
            conns: vec![ConnState::default(); bench.clients.max(1)],
            latencies_us: Vec::with_capacity(bench.requests_per_point),
            completed: 0,
            dropped: 0,
            peak_in_flight: 0,
            backend: BackendState::build(bench.backend),
            op_sample_every: bench.op_sample_every.max(1),
            admitted: 0,
            in_flight_probe: RunningStats::new(),
        }
    }

    /// Samples the next chunk of Poisson interarrival gaps and enqueues one
    /// arrival event per gap; reschedules itself after the chunk's last
    /// arrival while arrivals remain.
    fn generate(&mut self, sim: &mut Simulation<LoadSim>) {
        let n = self.remaining_arrivals.min(ARRIVAL_CHUNK);
        if n == 0 {
            return;
        }
        self.remaining_arrivals -= n;
        let mut offset = Nanos::ZERO;
        let mut batch = Vec::with_capacity(n as usize);
        for _ in 0..n {
            offset += Nanos::from_secs_f64(self.rng.exponential(self.offered_per_sec));
            batch.push((offset, |sim: &mut Simulation<LoadSim>, st: &mut LoadSim| {
                st.arrive(sim)
            }));
        }
        sim.schedule_batch(batch);
        if self.remaining_arrivals > 0 {
            // Scheduled after the chunk's last arrival (FIFO among equal
            // timestamps), so the next chunk continues from its clock.
            sim.schedule_in(offset, |sim, st: &mut LoadSim| st.generate(sim));
        }
    }

    /// One open-loop arrival: attribute it to a connection, run the sampled
    /// real-backend operation, then admit, enqueue or drop.
    fn arrive(&mut self, sim: &mut Simulation<LoadSim>) {
        let conn = self.rng.index(self.conns.len()) as u32;
        self.conns[conn as usize].issued += 1;
        let request = Request {
            arrived: sim.now(),
            conn,
        };
        if self.busy < self.servers {
            self.admit(request);
            self.busy += 1;
            sim.schedule_in(self.service_time, move |sim, st: &mut LoadSim| {
                st.complete(sim, request)
            });
        } else if self.queue.len() < self.queue_capacity {
            self.admit(request);
            self.queue.push_back(request);
        } else {
            self.conns[conn as usize].dropped += 1;
            self.dropped += 1;
        }
        self.peak_in_flight = self.peak_in_flight.max(self.busy + self.queue.len());
    }

    fn admit(&mut self, _request: Request) {
        self.admitted += 1;
        if self.admitted % self.op_sample_every == 0 {
            self.backend.execute(&mut self.rng);
        }
    }

    /// One service completion: record the sojourn time and pull the next
    /// queued request into the freed slot.
    fn complete(&mut self, sim: &mut Simulation<LoadSim>, request: Request) {
        let sojourn = sim.now() - request.arrived;
        self.latencies_us.push(sojourn.as_micros_f64());
        self.conns[request.conn as usize].completed += 1;
        self.completed += 1;
        if let Some(next) = self.queue.pop_front() {
            sim.schedule_in(self.service_time, move |sim, st: &mut LoadSim| {
                st.complete(sim, next)
            });
        } else {
            self.busy -= 1;
        }
    }

    fn into_point(self, fraction: f64, offered_per_sec: f64, end: Nanos) -> LoadPoint {
        let issued: u64 = self.conns.iter().map(|c| c.issued).sum();
        debug_assert_eq!(issued, self.completed + self.dropped);
        let cdf = Cdf::from_samples(self.latencies_us)
            .expect("a sweep point always completes at least one request");
        let duration = end.as_secs_f64().max(f64::MIN_POSITIVE);
        LoadPoint {
            offered_fraction: fraction,
            offered_per_sec,
            achieved_per_sec: self.completed as f64 / duration,
            p50_us: cdf.percentile(50.0),
            p95_us: cdf.percentile(95.0),
            p99_us: cdf.percentile(99.0),
            mean_us: cdf.mean(),
            completed: self.completed,
            dropped: self.dropped,
            peak_in_flight: self.peak_in_flight,
            mean_in_flight: self.in_flight_probe.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn tiny(backend: LoadBackend) -> LoadgenBenchmark {
        LoadgenBenchmark {
            clients: 64,
            requests_per_point: 600,
            runs: 1,
            ..LoadgenBenchmark::quick(backend)
        }
    }

    #[test]
    fn percentiles_are_ordered_at_every_point() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let points = bench.run_trial(&platform, &mut SimRng::seed_from(81));
        assert_eq!(points.len(), bench.load_points.len());
        for p in &points {
            assert!(
                p.p50_us <= p.p95_us && p.p95_us <= p.p99_us,
                "percentiles out of order at fraction {}: {p:?}",
                p.offered_fraction
            );
            assert!(p.p50_us > 0.0);
            assert!(p.completed > 0);
        }
    }

    #[test]
    fn latency_grows_toward_saturation() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Native.build();
        let points = bench.run_trial(&platform, &mut SimRng::seed_from(82));
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.mean_us > first.mean_us,
            "mean sojourn must inflate near saturation: {} -> {}",
            first.mean_us,
            last.mean_us
        );
        assert!(last.p99_us >= first.p99_us);
        assert!(
            last.mean_in_flight > first.mean_in_flight,
            "time-averaged in-flight depth must grow with load: {} -> {}",
            first.mean_in_flight,
            last.mean_in_flight
        );
        assert!(first.mean_in_flight > 0.0);
    }

    #[test]
    fn overload_drops_requests_at_the_bounded_queue() {
        let mut bench = tiny(LoadBackend::Memcached);
        bench.queue_capacity = 4;
        bench.load_points = vec![3.0]; // 3x capacity: queue must overflow
        let platform = PlatformId::Native.build();
        let point = &bench.run_trial(&platform, &mut SimRng::seed_from(83))[0];
        assert!(point.dropped > 0, "overload must hit the admission bound");
        assert!(
            point.achieved_per_sec < point.offered_per_sec,
            "achieved {} must fall below offered {}",
            point.achieved_per_sec,
            point.offered_per_sec
        );
        assert!(point.peak_in_flight <= bench.servers + bench.queue_capacity);
    }

    #[test]
    fn per_connection_accounting_balances() {
        let bench = tiny(LoadBackend::Mysql);
        let platform = PlatformId::Qemu.build();
        let profile = bench.service_profile(&platform);
        let offered = profile.capacity_per_sec() * 0.8;
        let mut sim: Simulation<LoadSim> = Simulation::new();
        let mut state = LoadSim::new(&bench, &profile, offered, SimRng::seed_from(84));
        sim.schedule_at(Nanos::ZERO, |sim, st: &mut LoadSim| st.generate(sim));
        sim.run(&mut state);
        let issued: u64 = state.conns.iter().map(|c| c.issued).sum();
        let completed: u64 = state.conns.iter().map(|c| c.completed).sum();
        let dropped: u64 = state.conns.iter().map(|c| c.dropped).sum();
        assert_eq!(issued, bench.requests_per_point as u64);
        assert_eq!(issued, completed + dropped);
        assert!(
            state.conns.iter().filter(|c| c.issued > 0).count() > bench.clients / 2,
            "arrivals must spread over the connection population"
        );
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Firecracker.build();
        let a = bench.run_trial(&platform, &mut SimRng::seed_from(85));
        let b = bench.run_trial(&platform, &mut SimRng::seed_from(85));
        assert_eq!(a, b);
        let c = bench.run_trial(&platform, &mut SimRng::seed_from(86));
        assert_ne!(a, c);
    }

    #[test]
    fn slower_platforms_pay_higher_latency_under_the_same_fraction() {
        let bench = tiny(LoadBackend::Memcached);
        let native = bench.run_trial(&PlatformId::Native.build(), &mut SimRng::seed_from(87));
        let gvisor = bench.run_trial(
            &PlatformId::GvisorPtrace.build(),
            &mut SimRng::seed_from(87),
        );
        // Same utilization fraction, but gVisor's per-op service time is
        // far larger, so its absolute sojourn times must dominate.
        for (n, g) in native.iter().zip(&gvisor) {
            assert!(
                g.p50_us > n.p50_us,
                "gvisor p50 {} must exceed native {}",
                g.p50_us,
                n.p50_us
            );
        }
    }

    #[test]
    fn mysql_profile_is_slower_than_memcached() {
        let platform = PlatformId::Docker.build();
        let kv = LoadgenBenchmark::quick(LoadBackend::Memcached).service_profile(&platform);
        let sql = LoadgenBenchmark::quick(LoadBackend::Mysql).service_profile(&platform);
        assert!(sql.service_time > kv.service_time);
        assert!(sql.capacity_per_sec() < kv.capacity_per_sec());
    }
}
