//! The netperf request/response latency benchmark (Fig. 12).
//!
//! The figure reports the 90th-percentile round-trip latency over 5 runs.

use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::SimRng;

/// The netperf benchmark.
#[derive(Debug, Clone, Copy)]
pub struct NetperfBenchmark {
    /// Number of runs.
    pub runs: usize,
}

impl Default for NetperfBenchmark {
    fn default() -> Self {
        NetperfBenchmark { runs: 5 }
    }
}

impl NetperfBenchmark {
    /// Creates a benchmark with the given run count.
    pub fn new(runs: usize) -> Self {
        NetperfBenchmark { runs: runs.max(1) }
    }

    /// Runs the benchmark; returns 90th-percentile latency statistics in
    /// microseconds.
    pub fn run_p90_us(&self, platform: &Platform, rng: &mut SimRng) -> RunningStats {
        (0..self.runs)
            .map(|_| {
                platform
                    .network()
                    .run_request_response(rng)
                    .p90_rtt
                    .as_micros_f64()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    #[test]
    fn latency_ordering_matches_figure_12() {
        let bench = NetperfBenchmark::default();
        let mut rng = SimRng::seed_from(41);
        let p90 = |id: PlatformId, rng: &mut SimRng| bench.run_p90_us(&id.build(), rng).mean();
        let docker = p90(PlatformId::Docker, &mut rng);
        let lxc = p90(PlatformId::Lxc, &mut rng);
        let kata = p90(PlatformId::Kata, &mut rng);
        let qemu = p90(PlatformId::Qemu, &mut rng);
        let fc = p90(PlatformId::Firecracker, &mut rng);
        let osv = p90(PlatformId::OsvQemu, &mut rng);
        let gvisor = p90(PlatformId::GvisorPtrace, &mut rng);

        // Bridge-based containers perform very well.
        assert!(docker < qemu && lxc < qemu);
        // OSv has slightly lower latencies than the hypervisors.
        assert!(osv < qemu && osv < fc, "osv {osv} vs qemu {qemu} / fc {fc}");
        // Kata uses bridges plus QEMU, so it is not better than Docker.
        assert!(kata > docker);
        // gVisor's p90 is 3–4x its competitors.
        assert!(gvisor > qemu * 2.5, "gvisor {gvisor} vs qemu {qemu}");
    }
}
