//! Staged middleware pipeline model (beyond the paper).
//!
//! Every other experiment charges a request one opaque service time, but
//! production gateway traffic traverses an ordered middleware chain —
//! authentication, session lookup, transforms, routing — where each stage
//! taxes the request on the way **in**, may tax the response on the way
//! **out**, may consult a cache (session store hit vs miss), and may
//! short-circuit the request entirely (an auth rejection or redirect
//! never reaches the backend). This module models exactly that: a
//! [`MiddlewareChain`] of [`Stage`]s executed per request on the same
//! [`crate::slots`] admission/slot core the open-loop [`crate::loadgen`]
//! sweeps use, so stage costs compose with bounded admission, service
//! slots and platform derating unchanged.
//!
//! The request lifecycle: a Poisson arrival is admitted (or dropped) by
//! the bounded queue exactly as in `loadgen`; on dispatch the chain is
//! traversed — every stage charges its in-phase cost, a cached stage
//! charges its hit or miss latency against a warmable hit rate, and a
//! stage may short-circuit, in which case the backend service time is
//! skipped and only the out-phases of the stages already entered run on
//! the response path. The slot is occupied for the full composed time,
//! so middleware cost feeds back into queueing exactly like backend cost.
//!
//! Determinism contract: per-stage cost/cache/short-circuit draws come
//! from per-stage streams that are consumed identically for **every**
//! dispatched request regardless of upstream outcomes, and the
//! arrival/service streams reuse the `loadgen` labels. Two consequences
//! the test battery pins down: sweep points are coupled by common random
//! numbers (monotone curves by coupling, not just in expectation), and a
//! zero-stage chain replays the plain [`crate::loadgen`] path **bit for
//! bit** — the degenerate-chain regression contract.

use platforms::Platform;
use simcore::error::SimError;
use simcore::obs::{Recorder, SpanKind};
use simcore::resource::CompletionTimer;
use simcore::stats::{Cdf, RunningStats};
use simcore::{Nanos, SimRng, Simulation};

use crate::loadgen::{ARRIVAL_CHUNK, MISC_STREAM};
use crate::slots::{backend_profile, Admission, BackendState, ClassConfig, SlotPolicy, SlotPool};
pub use crate::slots::{LoadBackend, ServiceProfile};

/// Label of the middleware-stage stream, split from the cell stream only
/// when some sweep point has a non-empty chain — a zero-depth sweep must
/// consume the cell stream exactly like [`crate::loadgen`] does.
const STAGE_STREAM: &str = "stages";

fn validated_us(what: &str, us: f64) -> Result<Nanos, SimError> {
    if !us.is_finite() || us < 0.0 {
        return Err(SimError::InvalidConfig(format!(
            "{what} must be finite and non-negative, got {us}"
        )));
    }
    Ok(Nanos::from_micros_f64(us))
}

fn validated_sigma(what: &str, sigma: f64) -> Result<f64, SimError> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(SimError::InvalidConfig(format!(
            "{what} must be finite and non-negative, got {sigma}"
        )));
    }
    Ok(sigma)
}

fn validated_rate(what: &str, rate: f64) -> Result<f64, SimError> {
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(SimError::InvalidConfig(format!(
            "{what} must be a probability in [0, 1], got {rate}"
        )));
    }
    Ok(rate)
}

/// One phase cost: a mean latency plus the log-normal sigma of the
/// per-request distribution around it (0 = deterministic, mean-preserving
/// otherwise — the same shape [`ServiceProfile`] uses for backend time).
#[derive(Debug, Clone, Copy, PartialEq)]
struct StageCost {
    mean: Nanos,
    sigma: f64,
}

impl StageCost {
    fn try_from_us(what: &str, mean_us: f64, sigma: f64) -> Result<Self, SimError> {
        Ok(StageCost {
            mean: validated_us(&format!("{what} cost"), mean_us)?,
            sigma: validated_sigma(&format!("{what} sigma"), sigma)?,
        })
    }

    /// Samples one phase latency. The draw count depends only on the
    /// configuration (zero for a deterministic cost, one normal pair
    /// otherwise), never on outcomes — the stream-alignment contract.
    fn sample(&self, rng: &mut SimRng) -> Nanos {
        if self.sigma <= 0.0 || self.mean == Nanos::ZERO {
            return self.mean;
        }
        let mean = self.mean.as_secs_f64();
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean.
        let sampled = rng.log_normal(mean.ln() - self.sigma * self.sigma / 2.0, self.sigma);
        Nanos::from_secs_f64(sampled)
    }
}

/// A warmable stage cache (e.g. a session store): hits and misses charge
/// different latencies, and the hit rate ramps linearly from cold (0) to
/// the configured target over the first `warm_after` accesses.
#[derive(Debug, Clone, PartialEq)]
struct StageCache {
    hit_cost: Nanos,
    miss_cost: Nanos,
    hit_rate: f64,
    warm_after: u64,
    accesses: u64,
}

impl StageCache {
    fn effective_hit_rate(&self) -> f64 {
        if self.warm_after == 0 {
            return self.hit_rate;
        }
        self.hit_rate * (self.accesses as f64 / self.warm_after as f64).min(1.0)
    }
}

/// One middleware stage: a mandatory in-phase cost, an optional out-phase
/// (response path) cost, an optional cache consulted during the in-phase,
/// and an optional short-circuit probability (auth rejection, redirect)
/// that skips the backend and every downstream stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name, for debugging and study output.
    pub name: String,
    in_cost: StageCost,
    out_cost: Option<StageCost>,
    short_circuit: f64,
    cache: Option<StageCache>,
}

impl Stage {
    /// A stage charging `in_us` microseconds (log-normal `sigma` around
    /// that mean; 0 = deterministic) on the request path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a non-finite or negative
    /// cost or sigma — mirroring [`ServiceProfile::try_new`], degenerate
    /// stage models fail loudly instead of saturating silently.
    pub fn try_new(name: &str, in_us: f64, sigma: f64) -> Result<Self, SimError> {
        Ok(Stage {
            name: name.to_string(),
            in_cost: StageCost::try_from_us("stage in-phase", in_us, sigma)?,
            out_cost: None,
            short_circuit: 0.0,
            cache: None,
        })
    }

    /// Adds a response-path (out-phase) cost to the stage.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a non-finite or negative
    /// cost or sigma.
    pub fn with_out_phase(mut self, out_us: f64, sigma: f64) -> Result<Self, SimError> {
        self.out_cost = Some(StageCost::try_from_us("stage out-phase", out_us, sigma)?);
        Ok(self)
    }

    /// Adds a per-request short-circuit probability: with rate `rate` the
    /// stage terminates the request (the backend and all downstream
    /// stages are skipped; the response still pays the out-phases of the
    /// stages already entered, this one included).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `rate` is a probability
    /// in `[0, 1]`.
    pub fn with_short_circuit(mut self, rate: f64) -> Result<Self, SimError> {
        self.short_circuit = validated_rate("stage short-circuit rate", rate)?;
        Ok(self)
    }

    /// Adds a warmable cache to the stage's in-phase: an access hits with
    /// the (warmup-ramped) `hit_rate` and charges `hit_us`, otherwise it
    /// charges the `miss_us` penalty. `warm_after` is the access count
    /// over which the hit rate ramps from cold to the target (0 =
    /// pre-warmed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-finite/negative costs
    /// or a `hit_rate` outside `[0, 1]`.
    pub fn with_cache(
        mut self,
        hit_us: f64,
        miss_us: f64,
        hit_rate: f64,
        warm_after: u64,
    ) -> Result<Self, SimError> {
        self.cache = Some(StageCache {
            hit_cost: validated_us("cache hit cost", hit_us)?,
            miss_cost: validated_us("cache miss cost", miss_us)?,
            hit_rate: validated_rate("cache hit rate", hit_rate)?,
            warm_after,
            accesses: 0,
        });
        Ok(self)
    }

    /// Mean per-request cost of the stage (in + expected cache + out),
    /// using the cache's warm target hit rate.
    fn expected_cost_secs(&self) -> f64 {
        let mut total = self.in_cost.mean.as_secs_f64();
        if let Some(out) = &self.out_cost {
            total += out.mean.as_secs_f64();
        }
        if let Some(cache) = &self.cache {
            total += cache.hit_rate * cache.hit_cost.as_secs_f64()
                + (1.0 - cache.hit_rate) * cache.miss_cost.as_secs_f64();
        }
        total
    }
}

/// The outcome of traversing the chain for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    /// Total middleware cost actually charged: in-phases and cache
    /// accesses of every entered stage plus the out-phases of the entered
    /// stages on the response path.
    pub stage_cost: Nanos,
    /// Number of stages the request entered.
    pub stages_traversed: usize,
    /// Index of the stage that short-circuited the request, if any.
    pub short_circuit: Option<usize>,
    /// Cache hits among the entered stages.
    pub cache_hits: u32,
    /// Cache misses among the entered stages.
    pub cache_misses: u32,
}

/// Per-stage detail handed to a [`MiddlewareChain::traverse_with`]
/// observer for every stage the request entered, in chain order — the
/// seam the trace recorder reconstructs per-stage spans from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageVisit {
    /// Index of the stage in the chain.
    pub stage: usize,
    /// In-phase cost charged to the request.
    pub in_cost: Nanos,
    /// Cache access outcome (`Some(true)` = hit), if the stage has one.
    pub cache_hit: Option<bool>,
    /// Cache latency charged (hit or miss cost).
    pub cache_cost: Nanos,
    /// Whether this stage short-circuited the request.
    pub short_circuited: bool,
    /// Out-phase (response path) cost charged.
    pub out_cost: Nanos,
}

/// An ordered chain of middleware stages, traversed in-phase first to
/// last on the request path and out-phase on the response path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MiddlewareChain {
    stages: Vec<Stage>,
}

impl MiddlewareChain {
    /// A chain of the given stages, traversed in order.
    pub fn new(stages: Vec<Stage>) -> Self {
        MiddlewareChain { stages }
    }

    /// The zero-stage chain: requests pass straight to the backend.
    pub fn empty() -> Self {
        MiddlewareChain::default()
    }

    /// Number of stages in the chain.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Mean per-request chain cost at the caches' warm target hit rates,
    /// ignoring warmup and short-circuits — the planning figure the sweep
    /// uses to normalize offered load to chain-inclusive capacity.
    pub fn expected_cost(&self) -> Nanos {
        Nanos::from_secs_f64(self.stages.iter().map(Stage::expected_cost_secs).sum())
    }

    /// Traverses the chain for one request, drawing from one stream per
    /// stage (`stage_rngs[i]` belongs to stage `i`).
    ///
    /// Every stage consumes its full draw complement even downstream of a
    /// short-circuit, so the per-stage streams stay aligned request by
    /// request whatever the outcomes — the common-random-numbers coupling
    /// the monotonicity tests rely on. Only entered stages charge costs,
    /// advance their cache warmup, or count hits and misses.
    pub fn traverse(&mut self, stage_rngs: &mut [SimRng]) -> Traversal {
        self.traverse_with(stage_rngs, |_| {})
    }

    /// [`MiddlewareChain::traverse`] with an observer that receives one
    /// [`StageVisit`] per *entered* stage, in chain order.
    ///
    /// The observer is called after the stage's draws, so it cannot
    /// change the draw order: `traverse` itself delegates here with a
    /// no-op observer, which is what makes the traced and untraced
    /// paths provably identical.
    pub fn traverse_with(
        &mut self,
        stage_rngs: &mut [SimRng],
        mut visit: impl FnMut(StageVisit),
    ) -> Traversal {
        debug_assert_eq!(
            stage_rngs.len(),
            self.stages.len(),
            "one stage stream per stage"
        );
        let mut cut = None;
        let mut cost = Nanos::ZERO;
        let mut traversed = 0usize;
        let (mut hits, mut misses) = (0u32, 0u32);
        for (i, (stage, rng)) in self
            .stages
            .iter_mut()
            .zip(stage_rngs.iter_mut())
            .enumerate()
        {
            let entered = cut.is_none();
            let in_cost = stage.in_cost.sample(rng);
            let mut cache_cost = Nanos::ZERO;
            let mut cache_hit = None;
            if let Some(cache) = &mut stage.cache {
                let draw = rng.uniform01();
                if entered {
                    let hit = draw < cache.effective_hit_rate();
                    cache.accesses += 1;
                    cache_hit = Some(hit);
                    if hit {
                        hits += 1;
                        cache_cost = cache.hit_cost;
                    } else {
                        misses += 1;
                        cache_cost = cache.miss_cost;
                    }
                }
            }
            let fired = stage.short_circuit > 0.0 && rng.chance(stage.short_circuit);
            let out_cost = stage
                .out_cost
                .as_ref()
                .map(|c| c.sample(rng))
                .unwrap_or(Nanos::ZERO);
            if entered {
                traversed += 1;
                cost += in_cost + cache_cost + out_cost;
                if fired {
                    cut = Some(i);
                }
                visit(StageVisit {
                    stage: i,
                    in_cost,
                    cache_hit,
                    cache_cost,
                    short_circuited: fired,
                    out_cost,
                });
            }
        }
        Traversal {
            stage_cost: cost,
            stages_traversed: traversed,
            short_circuit: cut,
            cache_hits: hits,
            cache_misses: misses,
        }
    }
}

/// One point of the pipeline sweep: a chain depth, the auth cache's
/// actual hit rate, and the hit rate the operator *planned* for when
/// provisioning the offered load. The two differ only at the
/// cache-miss-storm point, where traffic planned against a warm cache
/// meets a cold one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineSetting {
    /// Number of middleware stages in front of the backend.
    pub depth: usize,
    /// Actual auth-cache hit rate the chain runs with.
    pub hit_rate: f64,
    /// Hit rate the offered load was provisioned against.
    pub planned_hit_rate: f64,
}

impl PipelineSetting {
    /// A point whose offered load is provisioned against the actual hit
    /// rate (the normal case).
    pub fn new(depth: usize, hit_rate: f64) -> Self {
        PipelineSetting {
            depth,
            hit_rate,
            planned_hit_rate: hit_rate,
        }
    }

    /// A cache-miss-storm point: the chain runs at `hit_rate` but the
    /// offered load was provisioned for `planned_hit_rate`.
    pub fn storm(depth: usize, hit_rate: f64, planned_hit_rate: f64) -> Self {
        PipelineSetting {
            depth,
            hit_rate,
            planned_hit_rate,
        }
    }

    /// The categorical label of the point in figures and reports.
    pub fn label(&self) -> String {
        if (self.planned_hit_rate - self.hit_rate).abs() > 1e-9 {
            format!("d{} miss-storm", self.depth)
        } else {
            format!("d{} h{:.2}", self.depth, self.hit_rate)
        }
    }
}

/// Auth-cache hit rate of the depth sweep and planning basis of the
/// miss-storm point.
pub const BASELINE_HIT_RATE: f64 = 0.9;

/// Names of the non-auth middleware stages, in chain order.
const STAGE_KINDS: [&str; 7] = [
    "session",
    "transform",
    "cors",
    "route",
    "rate-limit",
    "audit",
    "compress",
];

/// Configuration of one middleware-pipeline sweep over chain depth and
/// auth-cache hit rate.
///
/// Stage costs are expressed as fractions of the platform's derated mean
/// backend service time, so the middleware tax scales with the platform
/// exactly like the paper's syscall-path overheads do: a chain that costs
/// 20% of a native request costs 20% of a (much larger) gVisor request.
#[derive(Debug, Clone)]
pub struct PipelineBenchmark {
    /// Which backend terminates the chain.
    pub backend: LoadBackend,
    /// Open-loop client population (connection attribution only).
    pub clients: usize,
    /// Requests offered per sweep point.
    pub requests_per_point: usize,
    /// The depth/hit-rate sweep, one [`PipelineSetting`] per point.
    pub sweep: Vec<PipelineSetting>,
    /// Offered load as a fraction of the chain-inclusive saturation
    /// capacity at the point's *planned* hit rate.
    pub offered_fraction: f64,
    /// Bounded admission queue depth in front of the service slots.
    pub queue_capacity: usize,
    /// Number of parallel service slots.
    pub servers: usize,
    /// Measurement repetitions (trials) per sweep point.
    pub runs: usize,
    /// Execute one real backend operation per this many admitted requests.
    pub op_sample_every: u64,
    /// In-phase cost of every stage, as a fraction of the backend mean.
    pub stage_in_frac: f64,
    /// Out-phase cost of every non-auth stage, as a fraction of the
    /// backend mean (0 disables the out-phase).
    pub stage_out_frac: f64,
    /// Auth-cache hit latency as a fraction of the backend mean.
    pub cache_hit_frac: f64,
    /// Auth-cache miss penalty as a fraction of the backend mean.
    pub cache_miss_frac: f64,
    /// Short-circuit (rejection) probability of the auth stage.
    pub auth_reject_rate: f64,
    /// Accesses over which the auth cache warms from cold to its target
    /// hit rate (0 = pre-warmed).
    pub cache_warm_after: u64,
    /// Log-normal sigma of per-request stage costs (0 = deterministic).
    pub stage_sigma: f64,
}

impl PipelineBenchmark {
    /// The full-scale configuration for a backend.
    pub fn new(backend: LoadBackend) -> Self {
        PipelineBenchmark {
            backend,
            clients: 10_000,
            requests_per_point: 20_000,
            sweep: PipelineSetting::default_sweep(),
            offered_fraction: 0.7,
            queue_capacity: 8_192,
            servers: 16,
            runs: 5,
            op_sample_every: 4,
            stage_in_frac: 0.12,
            stage_out_frac: 0.05,
            cache_hit_frac: 0.05,
            cache_miss_frac: 1.2,
            auth_reject_rate: 0.03,
            cache_warm_after: 256,
            stage_sigma: 0.2,
        }
    }

    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick(backend: LoadBackend) -> Self {
        PipelineBenchmark {
            clients: 256,
            requests_per_point: 2_500,
            runs: 3,
            ..PipelineBenchmark::new(backend)
        }
    }

    /// The platform's backend service profile under this configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate profile — an
    /// empty slot pool, or a platform derate that collapses the service
    /// time to zero.
    pub fn service_profile(&self, platform: &Platform) -> Result<ServiceProfile, SimError> {
        backend_profile(self.backend, platform, self.servers)
    }

    /// Builds the middleware chain for one sweep point: an `auth` stage
    /// with the warmable session cache and the rejection short-circuit,
    /// followed by `depth - 1` transform-style stages with in- and
    /// out-phase costs. Depth 0 yields the empty chain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any configured cost
    /// fraction, sigma or rate is degenerate (non-finite, negative, or a
    /// rate outside `[0, 1]`).
    pub fn chain_for(
        &self,
        profile: &ServiceProfile,
        depth: usize,
        hit_rate: f64,
    ) -> Result<MiddlewareChain, SimError> {
        let svc_us = profile.service_time.as_micros_f64();
        let mut stages = Vec::with_capacity(depth);
        for i in 0..depth {
            let stage = if i == 0 {
                Stage::try_new("auth", self.stage_in_frac * svc_us, self.stage_sigma)?
                    .with_cache(
                        self.cache_hit_frac * svc_us,
                        self.cache_miss_frac * svc_us,
                        hit_rate,
                        self.cache_warm_after,
                    )?
                    .with_short_circuit(self.auth_reject_rate)?
            } else {
                let name = STAGE_KINDS[(i - 1) % STAGE_KINDS.len()];
                let stage = Stage::try_new(name, self.stage_in_frac * svc_us, self.stage_sigma)?;
                if self.stage_out_frac > 0.0 {
                    stage.with_out_phase(self.stage_out_frac * svc_us, self.stage_sigma)?
                } else {
                    stage
                }
            };
            stages.push(stage);
        }
        Ok(MiddlewareChain::new(stages))
    }

    /// Runs the whole depth/hit-rate sweep once and returns one
    /// [`PipelinePoint`] per configured setting.
    ///
    /// This is the unit the parallel executor shards on. The arrival and
    /// service streams are common random numbers across the sweep points
    /// (the `loadgen` discipline), and the per-stage streams are derived
    /// so that two depths share the streams of their common stage prefix.
    ///
    /// # Errors
    ///
    /// Propagates the degenerate-profile error of
    /// [`PipelineBenchmark::service_profile`] and the degenerate-chain
    /// error of [`PipelineBenchmark::chain_for`].
    pub fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<PipelinePoint>, SimError> {
        let profile = self.service_profile(platform)?;
        // Common random numbers: every sweep point replays the same
        // unit-rate arrival gaps and the same backend service sequence.
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        // The stage stream only exists when some point has a non-empty
        // chain: splitting advances the parent stream, and a zero-depth
        // sweep must consume the cell stream exactly like `loadgen`.
        let stage_root = if self.sweep.iter().any(|s| s.depth > 0) {
            Some(rng.split(STAGE_STREAM))
        } else {
            None
        };
        self.sweep
            .iter()
            .map(|setting| {
                self.run_setting(
                    &profile,
                    setting,
                    arrival.clone(),
                    service.clone(),
                    stage_root.clone(),
                    rng,
                    None,
                )
                .map(|(point, _)| point)
            })
            .collect()
    }

    /// Runs one sweep point. `misc_rng` is the cell stream the
    /// timing-irrelevant draws are split from, one split per point — the
    /// same discipline as the `loadgen` sweep.
    #[allow(clippy::too_many_arguments)]
    fn run_setting(
        &self,
        profile: &ServiceProfile,
        setting: &PipelineSetting,
        arrival_rng: SimRng,
        service_rng: SimRng,
        stage_root: Option<SimRng>,
        misc_rng: &mut SimRng,
        obs: Option<Recorder>,
    ) -> Result<(PipelinePoint, Option<Recorder>), SimError> {
        let chain = self.chain_for(profile, setting.depth, setting.hit_rate)?;
        let planned = self.chain_for(profile, setting.depth, setting.planned_hit_rate)?;
        // Chain-inclusive capacity at the planned hit rate: the sweep
        // holds utilization constant across depths, so the miss-storm
        // point (planned warm, actually cold) lands above saturation.
        let per_request = profile.service_time + planned.expected_cost();
        let capacity_per_sec = profile.servers as f64 / per_request.as_secs_f64();
        let offered_per_sec = capacity_per_sec * self.offered_fraction.max(0.0);
        // One stream per stage, derived in stage order: depths d and d+1
        // share the streams of stages 0..d, coupling the depth sweep.
        let stage_rngs: Vec<SimRng> = match stage_root {
            Some(mut root) => (0..chain.depth())
                .map(|i| root.split(&format!("s{i}")))
                .collect(),
            None => Vec::new(),
        };
        let mut sim: Simulation<PipelineSim> = Simulation::new();
        let mut state = PipelineSim::new(
            self,
            profile,
            chain,
            stage_rngs,
            offered_per_sec,
            arrival_rng,
            service_rng,
            misc_rng.split(MISC_STREAM),
            obs,
        );
        // Kick off the batched Poisson arrival source.
        sim.schedule_at(Nanos::ZERO, |sim, st: &mut PipelineSim| st.generate(sim));
        // Probe the in-flight population at a fixed cadence across the
        // expected arrival window, exactly like the loadgen sweep.
        let probes = 64;
        let window =
            Nanos::from_secs_f64(self.requests_per_point as f64 / offered_per_sec.max(1.0));
        let period = window / probes;
        sim.schedule_periodic(period, period, probes, |_, st: &mut PipelineSim| {
            st.in_flight_probe.record(st.pool.in_flight() as f64);
        });
        sim.run(&mut state);
        if let Some(obs) = state.obs.as_mut() {
            // The wheel profile of one sweep point: the simulation's own
            // queue plus the batched completion timer's.
            obs.set_core_counters(sim.counters().merged(state.completions.counters()));
        }
        let obs = state.obs.take();
        Ok((state.into_point(setting, offered_per_sec, sim.now()), obs))
    }

    /// Runs one sweep setting with a trace [`Recorder`] attached and
    /// returns it alongside the measurement, loaded with the admission
    /// and per-stage span timeline of the sampled requests, the windowed
    /// pool/stage time-series, and the event-core counter profile.
    ///
    /// Tracing is observation only — the recorder consumes no random
    /// draws, so the returned [`PipelinePoint`] is bit-identical to the
    /// same setting inside an untraced [`PipelineBenchmark::run_trial`]
    /// of the same streams.
    ///
    /// # Errors
    ///
    /// Propagates the degenerate-profile and degenerate-chain errors of
    /// [`PipelineBenchmark::service_profile`] and
    /// [`PipelineBenchmark::chain_for`].
    pub fn run_setting_traced(
        &self,
        platform: &Platform,
        setting: &PipelineSetting,
        rng: &mut SimRng,
        recorder: Recorder,
    ) -> Result<(PipelinePoint, Recorder), SimError> {
        let profile = self.service_profile(platform)?;
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        let stage_root = if setting.depth > 0 {
            Some(rng.split(STAGE_STREAM))
        } else {
            None
        };
        let (point, obs) = self.run_setting(
            &profile,
            setting,
            arrival,
            service,
            stage_root,
            rng,
            Some(recorder),
        )?;
        Ok((point, obs.expect("the recorder threads through the run")))
    }
}

impl PipelineSetting {
    /// The default sweep: chain depth 1–8 at the baseline hit rate, an
    /// auth-cache hit-rate sweep at depth 4, and the cache-miss-storm
    /// point (cold cache, traffic provisioned for the warm one).
    pub fn default_sweep() -> Vec<PipelineSetting> {
        vec![
            PipelineSetting::new(1, BASELINE_HIT_RATE),
            PipelineSetting::new(2, BASELINE_HIT_RATE),
            PipelineSetting::new(4, BASELINE_HIT_RATE),
            PipelineSetting::new(6, BASELINE_HIT_RATE),
            PipelineSetting::new(8, BASELINE_HIT_RATE),
            PipelineSetting::new(4, 1.0),
            PipelineSetting::new(4, 0.75),
            PipelineSetting::new(4, 0.5),
            PipelineSetting::storm(4, 0.0, BASELINE_HIT_RATE),
        ]
    }
}

/// One measured point of the pipeline sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinePoint {
    /// Categorical sweep label (e.g. `d4 h0.90`, `d4 miss-storm`).
    pub label: String,
    /// Chain depth of the point.
    pub depth: usize,
    /// Actual auth-cache hit rate.
    pub hit_rate: f64,
    /// Hit rate the offered load was provisioned against.
    pub planned_hit_rate: f64,
    /// Offered load in requests per second.
    pub offered_per_sec: f64,
    /// Backend-served (not short-circuited) throughput in requests/sec.
    pub achieved_per_sec: f64,
    /// Median sojourn time (queueing + chain + service) in microseconds.
    pub p50_us: f64,
    /// 95th-percentile sojourn time in microseconds.
    pub p95_us: f64,
    /// 99th-percentile sojourn time in microseconds.
    pub p99_us: f64,
    /// Mean sojourn time in microseconds.
    pub mean_us: f64,
    /// Mean middleware cost actually charged per response (the per-stage
    /// latency tax summed over the entered stages), in microseconds.
    pub stage_tax_us: f64,
    /// Mean number of stages entered per response.
    pub mean_depth: f64,
    /// Fraction of responses that were short-circuited by a stage.
    pub short_circuit_fraction: f64,
    /// Auth-cache hit fraction over the point's accesses (warmup
    /// included).
    pub cache_hit_fraction: f64,
    /// Requests served by the backend.
    pub completed: u64,
    /// Requests short-circuited by a middleware stage.
    pub short_circuited: u64,
    /// Requests dropped by the bounded admission queue.
    pub dropped: u64,
    /// Dropped fraction of all issued requests.
    pub drop_fraction: f64,
    /// Peak number of in-flight requests (in service + queued).
    pub peak_in_flight: usize,
    /// Time-averaged in-flight depth from fixed-cadence probes.
    pub mean_in_flight: f64,
    /// Minimum over all responses of sojourn minus charged middleware
    /// cost, in microseconds — non-negative by construction (a request
    /// can never respond faster than the stages it traversed), the floor
    /// the latency-bound property test pins down.
    pub min_slack_us: f64,
}

/// Per-connection accounting of the open-loop client population.
#[derive(Debug, Default, Clone, Copy)]
struct ConnState {
    issued: u64,
    completed: u64,
    dropped: u64,
}

/// A request waiting in the admission queue or in service.
#[derive(Debug, Clone, Copy)]
struct Request {
    /// Deterministic arrival index, the identity trace sampling keys on.
    id: u64,
    arrived: Nanos,
    conn: u32,
    stage_cost: Nanos,
    cut: bool,
}

/// The discrete-event state of one pipeline sweep point — the `loadgen`
/// event loop with the middleware chain spliced into dispatch.
struct PipelineSim {
    arrival_rng: SimRng,
    service_rng: SimRng,
    misc_rng: SimRng,
    stage_rngs: Vec<SimRng>,
    profile: ServiceProfile,
    chain: MiddlewareChain,
    pool: SlotPool<Request>,
    offered_per_sec: f64,
    remaining_arrivals: u64,
    conns: Vec<ConnState>,
    latencies_us: Vec<f64>,
    completed: u64,
    short_circuited: u64,
    dropped: u64,
    peak_in_flight: usize,
    backend: BackendState,
    op_sample_every: u64,
    admitted: u64,
    in_flight_probe: RunningStats,
    stage_cost_ns_sum: u128,
    depth_sum: u64,
    cache_hits: u64,
    cache_misses: u64,
    min_slack_ns: i128,
    completions: CompletionTimer<Request>,
    drain_buf: Vec<(Nanos, Request)>,
    dispatch_buf: Vec<(usize, Nanos, Request)>,
    /// Arrival indices double as trace-sampling identities.
    next_request: u64,
    /// `None` is the zero-cost untraced path.
    obs: Option<Recorder>,
    obs_pool_lane: u32,
    obs_stage_lanes: Vec<u32>,
    visit_buf: Vec<StageVisit>,
}

impl PipelineSim {
    #[allow(clippy::too_many_arguments)]
    fn new(
        bench: &PipelineBenchmark,
        profile: &ServiceProfile,
        chain: MiddlewareChain,
        stage_rngs: Vec<SimRng>,
        offered_per_sec: f64,
        arrival_rng: SimRng,
        service_rng: SimRng,
        misc_rng: SimRng,
        mut obs: Option<Recorder>,
    ) -> Self {
        // Lane 0 is the admission/slot pool; each stage gets its own
        // lane, indexed so repeated stage kinds stay distinguishable.
        let obs_pool_lane = obs.as_mut().map_or(0, |o| o.lane("pool"));
        let obs_stage_lanes = match obs.as_mut() {
            Some(o) => chain
                .stages
                .iter()
                .enumerate()
                .map(|(i, s)| o.lane(&format!("s{i}:{}", s.name)))
                .collect(),
            None => Vec::new(),
        };
        let pool = SlotPool::new(
            profile.servers,
            SlotPolicy::FifoArrival,
            vec![ClassConfig {
                weight: 1,
                queue_capacity: bench.queue_capacity,
                mean_cost: profile.service_time + chain.expected_cost(),
            }],
        )
        .expect("a validated service profile yields a valid single-class pool");
        PipelineSim {
            arrival_rng,
            service_rng,
            misc_rng,
            stage_rngs,
            profile: *profile,
            chain,
            pool,
            offered_per_sec: offered_per_sec.max(1.0),
            remaining_arrivals: bench.requests_per_point as u64,
            conns: vec![ConnState::default(); bench.clients.max(1)],
            latencies_us: Vec::with_capacity(bench.requests_per_point),
            completed: 0,
            short_circuited: 0,
            dropped: 0,
            peak_in_flight: 0,
            backend: BackendState::build(bench.backend),
            op_sample_every: bench.op_sample_every.max(1),
            admitted: 0,
            in_flight_probe: RunningStats::new(),
            stage_cost_ns_sum: 0,
            depth_sum: 0,
            cache_hits: 0,
            cache_misses: 0,
            min_slack_ns: i128::MAX,
            completions: CompletionTimer::new(),
            drain_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            next_request: 0,
            obs,
            obs_pool_lane,
            obs_stage_lanes,
            visit_buf: Vec::new(),
        }
    }

    /// Samples the next chunk of Poisson interarrival gaps and enqueues
    /// one arrival event per gap; reschedules itself after the chunk's
    /// last arrival while arrivals remain. Identical to the `loadgen`
    /// source, chunk size included — the zero-stage chain must replay its
    /// event schedule bit for bit.
    fn generate(&mut self, sim: &mut Simulation<PipelineSim>) {
        let n = self.remaining_arrivals.min(ARRIVAL_CHUNK);
        if n == 0 {
            return;
        }
        self.remaining_arrivals -= n;
        let mut offset = Nanos::ZERO;
        let mut batch = Vec::with_capacity(n as usize);
        for _ in 0..n {
            offset +=
                Nanos::from_secs_f64(self.arrival_rng.exponential(1.0) / self.offered_per_sec);
            batch.push((
                offset,
                |sim: &mut Simulation<PipelineSim>, st: &mut PipelineSim| st.arrive(sim),
            ));
        }
        sim.schedule_batch(batch);
        if self.remaining_arrivals > 0 {
            sim.schedule_in(offset, |sim, st: &mut PipelineSim| st.generate(sim));
        }
    }

    /// One open-loop arrival: attribute it to a connection, run the
    /// sampled real-backend operation, then admit, enqueue or drop.
    fn arrive(&mut self, sim: &mut Simulation<PipelineSim>) {
        let conn = self.misc_rng.index(self.conns.len()) as u32;
        self.conns[conn as usize].issued += 1;
        let request = Request {
            id: self.next_request,
            arrived: sim.now(),
            conn,
            stage_cost: Nanos::ZERO,
            cut: false,
        };
        self.next_request += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.count_arrival(self.obs_pool_lane, request.arrived);
        }
        match self.pool.offer(0, request.arrived, request) {
            Admission::Dispatched => {
                self.admit();
                self.schedule_completion(sim, request);
            }
            Admission::Queued => self.admit(),
            Admission::Dropped => {
                self.conns[conn as usize].dropped += 1;
                self.dropped += 1;
                if let Some(obs) = self.obs.as_mut() {
                    obs.count_drop(self.obs_pool_lane, request.arrived);
                }
            }
        }
        self.peak_in_flight = self.peak_in_flight.max(self.pool.in_flight());
        if let Some(obs) = self.obs.as_mut() {
            obs.gauge(
                self.obs_pool_lane,
                request.arrived,
                self.pool.queued_total(),
                self.pool.busy(),
            );
        }
    }

    fn admit(&mut self) {
        self.admitted += 1;
        if self.admitted % self.op_sample_every == 0 {
            self.backend.execute(&mut self.misc_rng);
        }
    }

    /// Dispatch: traverse the chain, compose the slot occupancy (chain
    /// cost plus backend service unless short-circuited), and register
    /// the completion with the batched timer.
    ///
    /// The backend service time is sampled unconditionally — even for
    /// requests a stage short-circuits — so the `service` stream stays
    /// aligned with the `loadgen` path request for request.
    fn schedule_completion(&mut self, sim: &mut Simulation<PipelineSim>, mut request: Request) {
        let backend = self.profile.sample_service_time(&mut self.service_rng);
        let t = match self.obs.is_some() {
            // Traced run: collect the per-stage detail. `traverse`
            // delegates to `traverse_with`, so the draw order is the
            // same on both arms by construction.
            true => {
                let (chain, rngs, buf) =
                    (&mut self.chain, &mut self.stage_rngs, &mut self.visit_buf);
                buf.clear();
                chain.traverse_with(rngs, |v| buf.push(v))
            }
            false => self.chain.traverse(&mut self.stage_rngs),
        };
        if self.obs.is_some() {
            self.record_dispatch(sim.now(), &request, backend, t.short_circuit.is_some());
        }
        self.stage_cost_ns_sum += u128::from(t.stage_cost.as_nanos());
        self.depth_sum += t.stages_traversed as u64;
        self.cache_hits += u64::from(t.cache_hits);
        self.cache_misses += u64::from(t.cache_misses);
        request.stage_cost = t.stage_cost;
        request.cut = t.short_circuit.is_some();
        let service = if request.cut {
            t.stage_cost
        } else {
            t.stage_cost + backend
        };
        let service = service.max(Nanos::from_nanos(1));
        if let Some(wake) = self.completions.schedule(sim.now() + service, request) {
            sim.schedule_at(wake, |sim, st: &mut PipelineSim| st.drain_completions(sim));
        }
    }

    /// Folds one dispatch into the recorder: per-stage cache counts for
    /// every request, and — for sampled requests — the span timeline the
    /// slot occupancy decomposes into: admission wait, the in-phases in
    /// chain order (cache access charged inside), the backend slot
    /// service unless short-circuited, then the out-phases in reverse
    /// order. The spans tile `[arrived, dispatch + service]` exactly.
    fn record_dispatch(&mut self, now: Nanos, request: &Request, backend: Nanos, cut: bool) {
        let visits = std::mem::take(&mut self.visit_buf);
        if let Some(obs) = self.obs.as_mut() {
            for v in &visits {
                if let Some(hit) = v.cache_hit {
                    obs.count_cache(self.obs_stage_lanes[v.stage], now, hit);
                }
            }
            if obs.sampled(request.id) {
                obs.span(
                    SpanKind::AdmissionWait,
                    request.id,
                    self.obs_pool_lane,
                    request.arrived,
                    now,
                );
                let mut cursor = now;
                for v in &visits {
                    let lane = self.obs_stage_lanes[v.stage];
                    let in_end = cursor + v.in_cost + v.cache_cost;
                    obs.span(SpanKind::StageIn, request.id, lane, cursor, in_end);
                    if let Some(hit) = v.cache_hit {
                        let kind = if hit {
                            SpanKind::CacheHit
                        } else {
                            SpanKind::CacheMiss
                        };
                        obs.instant(kind, request.id, lane, cursor + v.in_cost);
                    }
                    if v.short_circuited {
                        obs.instant(SpanKind::ShortCircuit, request.id, lane, in_end);
                    }
                    cursor = in_end;
                }
                if !cut {
                    obs.span(
                        SpanKind::SlotService,
                        request.id,
                        self.obs_pool_lane,
                        cursor,
                        cursor + backend,
                    );
                    cursor += backend;
                }
                for v in visits.iter().rev() {
                    if v.out_cost > Nanos::ZERO {
                        let lane = self.obs_stage_lanes[v.stage];
                        obs.span(
                            SpanKind::StageOut,
                            request.id,
                            lane,
                            cursor,
                            cursor + v.out_cost,
                        );
                        cursor += v.out_cost;
                    }
                }
            }
        }
        self.visit_buf = visits;
    }

    /// One completion wake: drains every completion due in this wheel
    /// slot, records sojourn times and the middleware-cost slack, folds
    /// the batch into the pool, and dispatches the pulled queue heads.
    fn drain_completions(&mut self, sim: &mut Simulation<PipelineSim>) {
        let now = sim.now();
        let mut due = std::mem::take(&mut self.drain_buf);
        if let Some(wake) = self.completions.wake(now, &mut due) {
            sim.schedule_at(wake, |sim, st: &mut PipelineSim| st.drain_completions(sim));
        }
        for &(at, request) in &due {
            debug_assert_eq!(at, now, "completions drain exactly at their tick");
            let sojourn = now - request.arrived;
            self.latencies_us.push(sojourn.as_micros_f64());
            let slack = i128::from(sojourn.as_nanos()) - i128::from(request.stage_cost.as_nanos());
            self.min_slack_ns = self.min_slack_ns.min(slack);
            self.conns[request.conn as usize].completed += 1;
            if request.cut {
                self.short_circuited += 1;
            } else {
                self.completed += 1;
            }
            if let Some(obs) = self.obs.as_mut() {
                obs.count_completion(self.obs_pool_lane, now);
            }
        }
        let mut dispatched = std::mem::take(&mut self.dispatch_buf);
        self.pool
            .finish_batch(due.iter().map(|_| 0), &mut dispatched);
        due.clear();
        self.drain_buf = due;
        for (_, _, next) in dispatched.drain(..) {
            self.schedule_completion(sim, next);
        }
        self.dispatch_buf = dispatched;
    }

    fn into_point(
        self,
        setting: &PipelineSetting,
        offered_per_sec: f64,
        end: Nanos,
    ) -> PipelinePoint {
        let issued: u64 = self.conns.iter().map(|c| c.issued).sum();
        let responded = self.completed + self.short_circuited;
        debug_assert_eq!(issued, responded + self.dropped);
        debug_assert_eq!(self.pool.counters(0).dropped, self.dropped);
        let cdf = Cdf::from_samples(self.latencies_us)
            .expect("a sweep point always completes at least one request");
        let duration = end.as_secs_f64().max(f64::MIN_POSITIVE);
        let denom = responded.max(1) as f64;
        let accesses = (self.cache_hits + self.cache_misses).max(1) as f64;
        PipelinePoint {
            label: setting.label(),
            depth: setting.depth,
            hit_rate: setting.hit_rate,
            planned_hit_rate: setting.planned_hit_rate,
            offered_per_sec,
            achieved_per_sec: self.completed as f64 / duration,
            p50_us: cdf.percentile(50.0),
            p95_us: cdf.percentile(95.0),
            p99_us: cdf.percentile(99.0),
            mean_us: cdf.mean(),
            stage_tax_us: self.stage_cost_ns_sum as f64 / denom / 1e3,
            mean_depth: self.depth_sum as f64 / denom,
            short_circuit_fraction: self.short_circuited as f64 / denom,
            cache_hit_fraction: self.cache_hits as f64 / accesses,
            completed: self.completed,
            short_circuited: self.short_circuited,
            dropped: self.dropped,
            drop_fraction: self.dropped as f64 / issued.max(1) as f64,
            peak_in_flight: self.peak_in_flight,
            mean_in_flight: self.in_flight_probe.mean(),
            min_slack_us: if self.min_slack_ns == i128::MAX {
                0.0
            } else {
                self.min_slack_ns as f64 / 1e3
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::LoadgenBenchmark;
    use platforms::PlatformId;

    fn tiny(backend: LoadBackend) -> PipelineBenchmark {
        PipelineBenchmark {
            clients: 64,
            requests_per_point: 600,
            runs: 1,
            ..PipelineBenchmark::quick(backend)
        }
    }

    #[test]
    fn percentiles_are_ordered_and_trials_deterministic_per_seed() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let a = bench
            .run_trial(&platform, &mut SimRng::seed_from(91))
            .unwrap();
        assert_eq!(a.len(), bench.sweep.len());
        for p in &a {
            assert!(
                p.p50_us <= p.p95_us && p.p95_us <= p.p99_us,
                "percentiles out of order at {}: {p:?}",
                p.label
            );
            assert!(p.p50_us > 0.0);
            assert!(p.completed > 0);
            assert!(p.min_slack_us >= 0.0, "{}: {p:?}", p.label);
        }
        let b = bench
            .run_trial(&platform, &mut SimRng::seed_from(91))
            .unwrap();
        assert_eq!(a, b);
        let c = bench
            .run_trial(&platform, &mut SimRng::seed_from(92))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn deeper_chains_charge_a_larger_stage_tax_and_higher_latency() {
        let mut bench = tiny(LoadBackend::Memcached);
        bench.sweep = vec![
            PipelineSetting::new(1, BASELINE_HIT_RATE),
            PipelineSetting::new(4, BASELINE_HIT_RATE),
            PipelineSetting::new(8, BASELINE_HIT_RATE),
        ];
        let points = bench
            .run_trial(&PlatformId::Native.build(), &mut SimRng::seed_from(93))
            .unwrap();
        for pair in points.windows(2) {
            assert!(
                pair[1].stage_tax_us > pair[0].stage_tax_us,
                "stage tax must grow with depth: {pair:?}"
            );
            assert!(
                pair[1].p50_us > pair[0].p50_us,
                "p50 must grow with depth: {pair:?}"
            );
            assert!(pair[1].mean_depth > pair[0].mean_depth);
        }
    }

    #[test]
    fn requests_are_conserved_under_short_circuits_and_drops() {
        let mut bench = tiny(LoadBackend::Memcached);
        bench.auth_reject_rate = 0.3;
        bench.queue_capacity = 4;
        bench.offered_fraction = 2.0; // force drops at the bounded queue
        bench.sweep = vec![PipelineSetting::new(3, 0.8)];
        let p = &bench
            .run_trial(&PlatformId::Qemu.build(), &mut SimRng::seed_from(94))
            .unwrap()[0];
        assert_eq!(
            p.completed + p.short_circuited + p.dropped,
            bench.requests_per_point as u64
        );
        assert!(p.short_circuited > 0, "30% rejection must short-circuit");
        assert!(p.dropped > 0, "2x overload must hit the admission bound");
        assert!(p.short_circuit_fraction > 0.2 && p.short_circuit_fraction < 0.4);
    }

    #[test]
    fn a_cold_cache_warms_toward_its_target_hit_rate() {
        let mut warm = tiny(LoadBackend::Memcached);
        warm.cache_warm_after = 0;
        warm.sweep = vec![PipelineSetting::new(2, 0.9)];
        let mut cold = warm.clone();
        cold.cache_warm_after = 5_000; // warms over ~8x the request count
        let platform = PlatformId::Native.build();
        let hot = warm
            .run_trial(&platform, &mut SimRng::seed_from(95))
            .unwrap()[0]
            .cache_hit_fraction;
        let ramp = cold
            .run_trial(&platform, &mut SimRng::seed_from(95))
            .unwrap()[0]
            .cache_hit_fraction;
        assert!(
            (hot - 0.9).abs() < 0.05,
            "pre-warmed cache must hit near its target, got {hot}"
        );
        assert!(
            ramp < hot * 0.5,
            "a slowly warming cache must hit far less, got {ramp} vs {hot}"
        );
    }

    #[test]
    fn a_full_hit_cache_equals_the_cacheless_constant_cost_chain() {
        // Chain-level equivalence: a stage whose cache always hits is the
        // same stage with the hit cost folded into its in-phase cost.
        let cached = Stage::try_new("auth", 10.0, 0.0)
            .unwrap()
            .with_cache(5.0, 500.0, 1.0, 0)
            .unwrap();
        let folded = Stage::try_new("auth", 15.0, 0.0).unwrap();
        let tail = Stage::try_new("transform", 12.0, 0.0)
            .unwrap()
            .with_out_phase(4.0, 0.0)
            .unwrap();
        let mut a = MiddlewareChain::new(vec![cached, tail.clone()]);
        let mut b = MiddlewareChain::new(vec![folded, tail]);
        let mut root = SimRng::seed_from(96);
        let mut rngs_a: Vec<SimRng> = (0..2).map(|i| root.split(&format!("a{i}"))).collect();
        let mut rngs_b: Vec<SimRng> = (0..2).map(|i| root.split(&format!("b{i}"))).collect();
        for _ in 0..200 {
            let ta = a.traverse(&mut rngs_a);
            let tb = b.traverse(&mut rngs_b);
            assert_eq!(ta.stage_cost, tb.stage_cost);
            assert_eq!(ta.stages_traversed, tb.stages_traversed);
        }
    }

    #[test]
    fn zero_stage_chain_matches_the_plain_loadgen_path_bit_for_bit() {
        // The degenerate-config regression contract: a depth-0 pipeline
        // must replay the plain SlotPool load sweep exactly — identical
        // streams, identical event schedule, identical measurements.
        for backend in [LoadBackend::Memcached, LoadBackend::Mysql] {
            let pipeline = PipelineBenchmark {
                sweep: vec![PipelineSetting::new(0, BASELINE_HIT_RATE)],
                offered_fraction: 0.8,
                ..tiny(backend)
            };
            let loadgen = LoadgenBenchmark {
                clients: 64,
                requests_per_point: 600,
                runs: 1,
                load_points: vec![0.8],
                ..LoadgenBenchmark::quick(backend)
            };
            for platform in [PlatformId::Native, PlatformId::GvisorPtrace] {
                let platform = platform.build();
                let p = &pipeline
                    .run_trial(&platform, &mut SimRng::seed_from(97))
                    .unwrap()[0];
                let l = &loadgen
                    .run_trial(&platform, &mut SimRng::seed_from(97))
                    .unwrap()[0];
                assert_eq!(p.offered_per_sec, l.offered_per_sec);
                assert_eq!(p.achieved_per_sec, l.achieved_per_sec);
                assert_eq!(p.p50_us, l.p50_us);
                assert_eq!(p.p95_us, l.p95_us);
                assert_eq!(p.p99_us, l.p99_us);
                assert_eq!(p.mean_us, l.mean_us);
                assert_eq!(p.completed, l.completed);
                assert_eq!(p.dropped, l.dropped);
                assert_eq!(p.peak_in_flight, l.peak_in_flight);
                assert_eq!(p.mean_in_flight, l.mean_in_flight);
                assert_eq!(p.stage_tax_us, 0.0);
                assert_eq!(p.short_circuited, 0);
            }
        }
    }

    #[test]
    fn zero_cost_single_stage_chain_matches_the_loadgen_timings_bit_for_bit() {
        // A single stage with all-zero costs, no short-circuit and a
        // free cache consumes no timing-relevant draws: every latency
        // and throughput figure must equal the plain loadgen path's.
        let pipeline = PipelineBenchmark {
            sweep: vec![PipelineSetting::new(1, BASELINE_HIT_RATE)],
            offered_fraction: 0.8,
            stage_in_frac: 0.0,
            stage_out_frac: 0.0,
            cache_hit_frac: 0.0,
            cache_miss_frac: 0.0,
            auth_reject_rate: 0.0,
            ..tiny(LoadBackend::Memcached)
        };
        let loadgen = LoadgenBenchmark {
            clients: 64,
            requests_per_point: 600,
            runs: 1,
            load_points: vec![0.8],
            ..LoadgenBenchmark::quick(LoadBackend::Memcached)
        };
        let platform = PlatformId::Docker.build();
        let p = &pipeline
            .run_trial(&platform, &mut SimRng::seed_from(98))
            .unwrap()[0];
        let l = &loadgen
            .run_trial(&platform, &mut SimRng::seed_from(98))
            .unwrap()[0];
        assert_eq!(p.offered_per_sec, l.offered_per_sec);
        assert_eq!(p.achieved_per_sec, l.achieved_per_sec);
        assert_eq!(p.p50_us, l.p50_us);
        assert_eq!(p.p95_us, l.p95_us);
        assert_eq!(p.p99_us, l.p99_us);
        assert_eq!(p.mean_us, l.mean_us);
        assert_eq!(p.completed, l.completed);
        assert_eq!(p.dropped, l.dropped);
        assert_eq!(p.peak_in_flight, l.peak_in_flight);
        assert_eq!(p.mean_in_flight, l.mean_in_flight);
        assert_eq!(p.mean_depth, 1.0, "every request enters the free stage");
    }

    #[test]
    fn tracing_is_observation_only_and_reconstructs_stage_spans() {
        use simcore::obs::ObsConfig;
        let mut bench = tiny(LoadBackend::Memcached);
        bench.auth_reject_rate = 0.1;
        let setting = PipelineSetting::new(3, 0.8);
        bench.sweep = vec![setting];
        let platform = PlatformId::Native.build();
        let plain = &bench
            .run_trial(&platform, &mut SimRng::seed_from(101))
            .unwrap()[0];
        let recorder = Recorder::try_new(ObsConfig::new(5, 1.0)).unwrap();
        let (traced, recorder) = bench
            .run_setting_traced(&platform, &setting, &mut SimRng::seed_from(101), recorder)
            .unwrap();
        assert_eq!(*plain, traced, "the recorder must not perturb the run");
        let spans = recorder.spans();
        let has = |k: SpanKind| spans.iter().any(|s| s.kind == k);
        assert!(has(SpanKind::AdmissionWait) && has(SpanKind::SlotService));
        assert!(has(SpanKind::StageIn) && has(SpanKind::StageOut));
        assert!(has(SpanKind::CacheHit) && has(SpanKind::CacheMiss));
        assert!(has(SpanKind::ShortCircuit), "10% rejection must appear");
        // The stage lanes carry the cache series; the pool lane carries
        // admission and service.
        let timeline = recorder.timeline_json("pipeline", 101);
        assert!(timeline.contains("\"lane\": \"pool\""));
        assert!(timeline.contains("\"lane\": \"s0:auth\""));
        assert!(timeline.contains("\"lane\": \"s1:session\""));
    }

    #[test]
    fn degenerate_stage_models_fail_loudly() {
        assert!(Stage::try_new("auth", f64::NAN, 0.2).is_err());
        assert!(Stage::try_new("auth", -1.0, 0.2).is_err());
        assert!(Stage::try_new("auth", f64::INFINITY, 0.2).is_err());
        assert!(Stage::try_new("auth", 10.0, -0.1).is_err());
        assert!(Stage::try_new("auth", 10.0, f64::NAN).is_err());
        let stage = || Stage::try_new("auth", 10.0, 0.2).unwrap();
        assert!(stage().with_out_phase(f64::NEG_INFINITY, 0.0).is_err());
        assert!(stage().with_out_phase(5.0, -1.0).is_err());
        assert!(stage().with_short_circuit(1.5).is_err());
        assert!(stage().with_short_circuit(-0.1).is_err());
        assert!(stage().with_short_circuit(f64::NAN).is_err());
        assert!(stage().with_cache(-5.0, 50.0, 0.9, 0).is_err());
        assert!(stage().with_cache(5.0, f64::NAN, 0.9, 0).is_err());
        assert!(stage().with_cache(5.0, 50.0, 1.1, 0).is_err());
        // A degenerate benchmark configuration surfaces through run_trial.
        let bench = PipelineBenchmark {
            stage_in_frac: f64::NAN,
            ..tiny(LoadBackend::Memcached)
        };
        assert!(bench
            .run_trial(&PlatformId::Native.build(), &mut SimRng::seed_from(99))
            .is_err());
        let empty_pool = PipelineBenchmark {
            servers: 0,
            ..tiny(LoadBackend::Memcached)
        };
        assert!(empty_pool
            .run_trial(&PlatformId::Native.build(), &mut SimRng::seed_from(99))
            .is_err());
    }

    #[test]
    fn the_miss_storm_overloads_the_planned_capacity() {
        let mut bench = tiny(LoadBackend::Memcached);
        bench.sweep = vec![
            PipelineSetting::new(4, BASELINE_HIT_RATE),
            PipelineSetting::storm(4, 0.0, BASELINE_HIT_RATE),
        ];
        let points = bench
            .run_trial(&PlatformId::Native.build(), &mut SimRng::seed_from(100))
            .unwrap();
        let (warm, storm) = (&points[0], &points[1]);
        assert_eq!(
            warm.offered_per_sec, storm.offered_per_sec,
            "the storm runs at the load planned for the warm cache"
        );
        assert!(
            storm.p99_us > warm.p99_us * 1.5,
            "a cold cache under warm-planned load must blow up the tail: \
             {} vs {}",
            storm.p99_us,
            warm.p99_us
        );
        assert!(storm.cache_hit_fraction < 0.01);
    }
}
