//! The shared service-slot core of the open-loop subsystems.
//!
//! Both the single-population load generator ([`crate::loadgen`]) and the
//! multi-tenant co-location subsystem ([`crate::tenancy`]) drive a
//! platform's **derated service-slot pool** through bounded admission
//! queues. This module is the one implementation both share:
//!
//! * [`ServiceProfile`] — the derated per-slot service-time model of one
//!   backend on one platform, with a log-normal per-request service-time
//!   distribution around the closed-loop mean (so open-loop tails reflect
//!   service-time variance, not just queueing). Construction is guarded:
//!   a degenerate platform profile (zero or non-finite derated service
//!   time) returns a [`SimError`] instead of an infinite capacity.
//! * [`SlotPool`] — a fixed pool of service slots fed by one bounded FIFO
//!   admission queue per class (tenant), scheduled either in global
//!   arrival order ([`SlotPolicy::FifoArrival`]) or by weighted
//!   deficit-round-robin over the classes ([`SlotPolicy::WeightedDrr`]).
//! * [`BackendState`] — the sampled real-backend execution (kvstore /
//!   relstore) that keeps the simulated load honest against the actual
//!   data structures.

use std::collections::VecDeque;

use kvstore::{Store, StoreConfig};
use platforms::Platform;
use relstore::{Database, Table};
use simcore::dist::Distribution;
use simcore::error::SimError;
use simcore::{Nanos, SimRng};

use crate::sysbench_oltp::OltpBenchmark;
use crate::ycsb::YcsbBenchmark;

/// Which simulated backend the generated load drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBackend {
    /// The Memcached-like key-value store behind Fig. 16.
    Memcached,
    /// The MySQL-like relational engine behind Fig. 17.
    Mysql,
}

/// Default log-normal sigma of the per-request service-time distribution:
/// a modest right tail (p99/median around 1.8x) consistent with the
/// service-time variance the closed-loop models fold into their means.
pub const DEFAULT_SERVICE_SIGMA: f64 = 0.25;

/// The effective service model of one backend on one platform: the
/// derated mean per-slot service time, the pool width, and the shape of
/// the per-request service-time distribution around that mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceProfile {
    /// Mean effective service time of one request on one slot.
    pub service_time: Nanos,
    /// Number of parallel service slots.
    pub servers: usize,
    /// Log-normal sigma of per-request service times (0 = deterministic).
    pub sigma: f64,
}

impl ServiceProfile {
    /// Builds a profile, rejecting degenerate inputs: a zero (or, because
    /// [`Nanos::from_secs_f64`] saturates, negative or non-finite) derated
    /// service time would imply an **infinite** saturation capacity, and an
    /// empty slot pool can serve nothing.
    pub fn try_new(service_time: Nanos, servers: usize) -> Result<Self, SimError> {
        if servers == 0 {
            return Err(SimError::InvalidConfig(
                "service-slot pool must have at least one slot".into(),
            ));
        }
        if service_time == Nanos::ZERO {
            return Err(SimError::InvalidConfig(
                "derated service time must be positive and finite \
                 (a zero/negative/non-finite time implies infinite capacity)"
                    .into(),
            ));
        }
        Ok(ServiceProfile {
            service_time,
            servers,
            sigma: DEFAULT_SERVICE_SIGMA,
        })
    }

    /// Returns the profile with a different per-request sigma (clamped at
    /// zero; zero means deterministic service times).
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        self.sigma = sigma.max(0.0);
        self
    }

    /// The saturation capacity of the slot pool in requests per second.
    /// Finite by construction (see [`ServiceProfile::try_new`]).
    pub fn capacity_per_sec(&self) -> f64 {
        self.servers as f64 / self.service_time.as_secs_f64()
    }

    /// The per-request service-time distribution in seconds: log-normal
    /// with mean equal to the profile's mean service time, so sampling
    /// changes the tails but never the offered/achieved balance.
    pub fn service_distribution(&self) -> Distribution {
        let mean = self.service_time.as_secs_f64();
        if self.sigma <= 0.0 {
            Distribution::constant(mean)
        } else {
            // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean.
            Distribution::log_normal(mean.ln() - self.sigma * self.sigma / 2.0, self.sigma)
        }
    }

    /// Samples one per-request service time.
    pub fn sample_service_time(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_secs_f64(self.service_distribution().sample(rng)).max(Nanos::from_nanos(1))
    }
}

/// The derated service profile of one backend on one platform with a slot
/// pool of the given width — the shared cost model of `loadgen` and
/// `tenancy`: identical per-request platform costs to the closed-loop
/// YCSB/OLTP paths, derated by the platform's parallel efficiency
/// (Memcached) or its combined USL contention (MySQL).
pub fn backend_profile(
    backend: LoadBackend,
    platform: &Platform,
    servers: usize,
) -> Result<ServiceProfile, SimError> {
    if servers == 0 {
        return Err(SimError::InvalidConfig(
            "service-slot pool must have at least one slot".into(),
        ));
    }
    match backend {
        LoadBackend::Memcached => {
            // Identical per-operation cost model to the YCSB path; the
            // slot pool derates by the platform's parallel efficiency.
            let per_op = YcsbBenchmark::default().per_op_service_time(platform);
            let eff = platform.cpu().parallel_efficiency(servers);
            if eff <= 0.0 || !eff.is_finite() {
                return Err(SimError::InvalidConfig(format!(
                    "degenerate parallel efficiency {eff} derates to an unusable slot pool"
                )));
            }
            ServiceProfile::try_new(per_op.scale(1.0 / eff), servers)
        }
        LoadBackend::Mysql => {
            // Identical per-transaction cost model to the OLTP path; the
            // pool derates by the combined workload + scheduler USL
            // contention at this concurrency.
            let bench = OltpBenchmark::default();
            let per_txn = bench.per_txn_service_time(platform);
            let usl_capacity = OltpBenchmark::contention(platform).capacity(servers);
            if usl_capacity <= 0.0 || !usl_capacity.is_finite() {
                return Err(SimError::InvalidConfig(format!(
                    "degenerate USL capacity {usl_capacity} derates to an unusable slot pool"
                )));
            }
            ServiceProfile::try_new(per_txn.scale(servers as f64 / usl_capacity), servers)
        }
    }
}

/// How a freed service slot picks the next queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPolicy {
    /// Global FIFO: the queued request with the earliest arrival time wins,
    /// regardless of class — unweighted sharing, the baseline the weighted
    /// scheduler is compared against.
    FifoArrival,
    /// Weighted deficit-round-robin over the classes: each class banks a
    /// quantum proportional to its weight per round and spends its mean
    /// per-request cost per dispatch, so long-run service shares follow
    /// the weights while staying work-conserving.
    WeightedDrr,
}

/// Static configuration of one class (tenant) of a [`SlotPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassConfig {
    /// DRR weight (service share relative to the other classes).
    pub weight: u64,
    /// Bounded admission-queue depth; arrivals that find the queue full
    /// (and no free slot) are dropped.
    pub queue_capacity: usize,
    /// Mean per-request cost charged against the class's deficit — the
    /// class's mean service time.
    pub mean_cost: Nanos,
}

/// The outcome of offering one request to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A slot was free; the request enters service immediately (the caller
    /// schedules its completion).
    Dispatched,
    /// All slots busy; the request waits in its class's admission queue.
    Queued,
    /// All slots busy and the class's queue is full; the request is lost.
    Dropped,
}

/// Lifetime counters of one class, for accounting and invariant checks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClassCounters {
    /// Requests offered to the pool.
    pub offered: u64,
    /// Requests dropped at the full admission queue.
    pub dropped: u64,
    /// Requests that entered service (immediately or from the queue).
    pub dispatched: u64,
    /// Requests whose service completed.
    pub completed: u64,
}

impl ClassCounters {
    /// Requests currently occupying a slot.
    pub fn in_service(&self) -> u64 {
        self.dispatched - self.completed
    }
}

struct ClassState<T> {
    cfg: ClassConfig,
    queue: VecDeque<(Nanos, T)>,
    deficit: Nanos,
    /// Whether the class currently sits in the DRR rotation (prevents
    /// duplicate rotation entries when a queue drains and refills).
    in_rotation: bool,
    counters: ClassCounters,
}

/// A pool of identical service slots fed by per-class bounded admission
/// queues — the slot/queue core shared by `loadgen` (one class) and
/// `tenancy` (one class per tenant).
///
/// The pool tracks occupancy and queue contents; the caller owns the
/// clock: it schedules a completion for every dispatched request and calls
/// [`SlotPool::finish`] when it fires, receiving the next request (if any)
/// to put into the freed slot.
pub struct SlotPool<T> {
    servers: usize,
    busy: usize,
    policy: SlotPolicy,
    quantum: Nanos,
    classes: Vec<ClassState<T>>,
    /// DRR visit order over the classes with queued work (lazily cleaned).
    rotation: VecDeque<usize>,
}

impl<T> SlotPool<T> {
    /// Builds a pool. Errors on an empty pool, no classes, a zero weight
    /// (the class would starve under DRR) or a zero mean cost (the class
    /// would monopolize every round).
    pub fn new(
        servers: usize,
        policy: SlotPolicy,
        classes: Vec<ClassConfig>,
    ) -> Result<Self, SimError> {
        if servers == 0 {
            return Err(SimError::InvalidConfig(
                "slot pool must have at least one slot".into(),
            ));
        }
        if classes.is_empty() {
            return Err(SimError::InvalidConfig(
                "slot pool needs at least one class".into(),
            ));
        }
        for (i, class) in classes.iter().enumerate() {
            if class.weight == 0 {
                return Err(SimError::InvalidConfig(format!(
                    "class {i} has zero weight and would starve"
                )));
            }
            if class.mean_cost == Nanos::ZERO {
                return Err(SimError::InvalidConfig(format!(
                    "class {i} has zero mean cost and would monopolize the pool"
                )));
            }
        }
        // One quantum lets the heaviest class dispatch at least one
        // request per round, so every class makes progress each rotation.
        let quantum = classes
            .iter()
            .map(|c| c.mean_cost)
            .fold(Nanos::ZERO, Nanos::max);
        Ok(SlotPool {
            servers,
            busy: 0,
            policy,
            quantum,
            classes: classes
                .into_iter()
                .map(|cfg| ClassState {
                    cfg,
                    queue: VecDeque::new(),
                    deficit: Nanos::ZERO,
                    in_rotation: false,
                    counters: ClassCounters::default(),
                })
                .collect(),
            rotation: VecDeque::new(),
        })
    }

    /// Number of slots in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of slots currently serving a request.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Queue depth of one class.
    pub fn queued(&self, class: usize) -> usize {
        self.classes[class].queue.len()
    }

    /// Total queued requests across all classes.
    pub fn queued_total(&self) -> usize {
        self.classes.iter().map(|c| c.queue.len()).sum()
    }

    /// Requests in service plus queued, across all classes.
    pub fn in_flight(&self) -> usize {
        self.busy + self.queued_total()
    }

    /// Lifetime counters of one class.
    pub fn counters(&self, class: usize) -> ClassCounters {
        self.classes[class].counters
    }

    /// Consumes the pool and returns every queued request as `(class,
    /// arrival time, request)` — classes in index order, FIFO within a
    /// class — the node-death path: a failed node abandons its admission
    /// queues at once and the caller resolves each waiter as failed.
    ///
    /// In-service requests are *not* represented here (the pool never
    /// holds them); the caller surrenders those from its completion
    /// timer (see `simcore::resource::CompletionTimer::into_pending`).
    /// The caller typically replaces the pool with a freshly built one,
    /// whose zeroed counters mark the node's restart.
    pub fn into_queued(self) -> Vec<(usize, Nanos, T)> {
        self.classes
            .into_iter()
            .enumerate()
            .flat_map(|(class, state)| {
                state
                    .queue
                    .into_iter()
                    .map(move |(arrived, item)| (class, arrived, item))
            })
            .collect()
    }

    /// Offers one request of `class` (arrived at `arrived`) to the pool:
    /// dispatch into a free slot, else queue, else drop.
    pub fn offer(&mut self, class: usize, arrived: Nanos, item: T) -> Admission {
        self.classes[class].counters.offered += 1;
        if self.busy < self.servers {
            self.busy += 1;
            self.classes[class].counters.dispatched += 1;
            Admission::Dispatched
        } else if self.classes[class].queue.len() < self.classes[class].cfg.queue_capacity {
            if !self.classes[class].in_rotation {
                self.classes[class].in_rotation = true;
                self.rotation.push_back(class);
            }
            self.classes[class].queue.push_back((arrived, item));
            Admission::Queued
        } else {
            self.classes[class].counters.dropped += 1;
            Admission::Dropped
        }
    }

    /// Completes one in-service request of `class` and hands the freed
    /// slot to the next queued request per the pool's policy, returning
    /// `(class, arrival time, request)` of the newly dispatched one — or
    /// `None` (and a freed slot) when every queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if `class` has no request in service — a caller accounting
    /// bug that must fail loudly.
    pub fn finish(&mut self, class: usize) -> Option<(usize, Nanos, T)> {
        let counters = &mut self.classes[class].counters;
        assert!(
            counters.in_service() > 0,
            "finish() for class {class} with no request in service"
        );
        counters.completed += 1;
        let next = match self.policy {
            SlotPolicy::FifoArrival => self.pick_fifo(),
            SlotPolicy::WeightedDrr => self.pick_drr(),
        };
        match next {
            Some(c) => {
                let (arrived, item) = self.classes[c]
                    .queue
                    .pop_front()
                    .expect("picked class has a queued request");
                if self.classes[c].queue.is_empty() {
                    // Standard DRR: an emptied class banks no deficit.
                    self.classes[c].deficit = Nanos::ZERO;
                }
                self.classes[c].counters.dispatched += 1;
                Some((c, arrived, item))
            }
            None => {
                self.busy -= 1;
                None
            }
        }
    }

    /// Completes a whole batch of in-service requests — one per element of
    /// `classes`, in order — and appends every newly dispatched request the
    /// freed slots pulled from the queues to `dispatched`.
    ///
    /// This is the slot-pool half of the batched completion drain: a
    /// timing-wheel slot's worth of completions (everything due at one
    /// clock advance, see [`simcore::resource::CompletionTimer`]) is
    /// folded into the pool in one call, producing exactly the dispatch
    /// sequence the equivalent per-completion [`SlotPool::finish`] calls
    /// would.
    ///
    /// # Panics
    ///
    /// Panics if any named class has no request in service, like
    /// [`SlotPool::finish`].
    pub fn finish_batch(
        &mut self,
        classes: impl IntoIterator<Item = usize>,
        dispatched: &mut Vec<(usize, Nanos, T)>,
    ) {
        for class in classes {
            if let Some(next) = self.finish(class) {
                dispatched.push(next);
            }
        }
    }

    /// Global FIFO: earliest queued arrival across all classes (ties go to
    /// the lowest class index, matching the enqueue order of equal
    /// timestamps within a class).
    fn pick_fifo(&self) -> Option<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.queue.front().map(|(at, _)| (*at, i)))
            .min()
            .map(|(_, i)| i)
    }

    /// Weighted DRR: rotate over the active classes, banking
    /// `quantum x weight` per visit and spending `mean_cost` per dispatch.
    fn pick_drr(&mut self) -> Option<usize> {
        if self.classes.iter().all(|c| c.queue.is_empty()) {
            return None;
        }
        // Each full rotation banks at least one quantum (= the largest
        // per-request cost) per active class, so every class can pay its
        // cost within two rotations; the fuel bound is unreachable.
        let mut fuel = 4 * self.classes.len() + 4;
        loop {
            assert!(fuel > 0, "DRR rotation failed to pick a class");
            fuel -= 1;
            // offer() inserts every class whose queue becomes non-empty and
            // the only removal happens when its queue is empty again, so a
            // class with queued work is always present here.
            let c = *self
                .rotation
                .front()
                .expect("a class with queued work is always in the rotation");
            if self.classes[c].queue.is_empty() {
                self.classes[c].deficit = Nanos::ZERO;
                self.classes[c].in_rotation = false;
                self.rotation.pop_front();
                continue;
            }
            let cost = self.classes[c].cfg.mean_cost;
            if self.classes[c].deficit >= cost {
                self.classes[c].deficit -= cost;
                return Some(c);
            }
            self.rotation.pop_front();
            self.rotation.push_back(c);
            let refill = self.quantum * self.classes[c].cfg.weight;
            self.classes[c].deficit += refill;
        }
    }
}

impl<T> std::fmt::Debug for SlotPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotPool")
            .field("servers", &self.servers)
            .field("busy", &self.busy)
            .field("policy", &self.policy)
            .field("queued", &self.queued_total())
            .finish()
    }
}

/// Sampled real-backend execution so the simulated load keeps the actual
/// data structures honest (the same reasoning as the YCSB/OLTP paths).
pub(crate) enum BackendState {
    Kv {
        store: Store,
        records: usize,
    },
    Sql {
        db: Database,
        table: Table,
        rows: u64,
        conflicts: u64,
    },
}

/// Unified store-occupancy snapshot over both sampled backends — the
/// shard-level parity surface the tenancy points report: the kvstore
/// backend maps its shard `entries`/`evictions` straight through, the
/// relational backend maps live rows to `entries`, lifetime deletes to
/// `evictions`, and additionally reports row-lock contention.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Live store entries (kv) or table rows (sql).
    pub entries: u64,
    /// Evicted entries (kv) or deleted rows (sql) over the run.
    pub evictions: u64,
    /// Row-lock contention events (always zero for the kv backend).
    pub lock_waits: u64,
}

impl BackendState {
    pub(crate) fn store_stats(&self) -> StoreSnapshot {
        match self {
            BackendState::Kv { store, .. } => {
                let s = store.stats();
                StoreSnapshot {
                    entries: s.entries,
                    evictions: s.evictions,
                    lock_waits: 0,
                }
            }
            BackendState::Sql { db, .. } => {
                let s = db.stats();
                StoreSnapshot {
                    entries: s.rows as u64,
                    evictions: s.deletes,
                    lock_waits: s.lock_waits,
                }
            }
        }
    }

    pub(crate) fn build(backend: LoadBackend) -> BackendState {
        match backend {
            LoadBackend::Memcached => {
                let records = 4_096;
                let store = Store::new(StoreConfig::default());
                for i in 0..records {
                    store.set(format!("load{i:06}").as_bytes(), vec![b'x'; 100]);
                }
                BackendState::Kv { store, records }
            }
            LoadBackend::Mysql => {
                let rows = 2_000;
                let db = Database::new();
                let table = db.populate_sysbench(1, rows).remove(0);
                BackendState::Sql {
                    db,
                    table,
                    rows,
                    conflicts: 0,
                }
            }
        }
    }

    pub(crate) fn execute(&mut self, rng: &mut SimRng) {
        match self {
            BackendState::Kv { store, records } => {
                let key = format!("load{:06}", rng.index(*records));
                if rng.chance(0.5) {
                    let _ = store.get(key.as_bytes());
                } else {
                    store.set(key.as_bytes(), vec![b'y'; 100]);
                }
            }
            BackendState::Sql {
                db,
                table,
                rows,
                conflicts,
            } => {
                let target = 1 + rng.index(*rows as usize) as u64;
                let mut txn = db.begin();
                let ok = txn
                    .select(table, target)
                    .and_then(|_| txn.update(table, target, rng.index(1_000) as u64));
                match ok {
                    Ok(_) => txn.commit(),
                    Err(_) => {
                        *conflicts += 1;
                        txn.rollback();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn cfg(weight: u64, cap: usize, cost_ns: u64) -> ClassConfig {
        ClassConfig {
            weight,
            queue_capacity: cap,
            mean_cost: Nanos::from_nanos(cost_ns),
        }
    }

    #[test]
    fn degenerate_profiles_are_rejected_instead_of_infinite_capacity() {
        assert!(ServiceProfile::try_new(Nanos::ZERO, 16).is_err());
        assert!(ServiceProfile::try_new(Nanos::from_micros(3), 0).is_err());
        // A non-finite derate saturates to zero nanoseconds and must error,
        // not produce capacity_per_sec() == inf.
        assert!(ServiceProfile::try_new(Nanos::from_micros(3).scale(f64::NAN), 16).is_err());
        let ok = ServiceProfile::try_new(Nanos::from_micros(2), 16).unwrap();
        assert!(ok.capacity_per_sec().is_finite());
        assert!((ok.capacity_per_sec() - 8e6).abs() < 1.0);
    }

    #[test]
    fn backend_profile_rejects_an_empty_pool() {
        let platform = PlatformId::Native.build();
        assert!(backend_profile(LoadBackend::Memcached, &platform, 0).is_err());
        assert!(backend_profile(LoadBackend::Memcached, &platform, 16).is_ok());
    }

    #[test]
    fn service_sampling_preserves_the_mean_and_respects_sigma_zero() {
        let profile = ServiceProfile::try_new(Nanos::from_micros(10), 4).unwrap();
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mean_us: f64 = (0..n)
            .map(|_| profile.sample_service_time(&mut rng).as_micros_f64())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_us - 10.0).abs() < 0.3,
            "log-normal sampling must keep the closed-loop mean, got {mean_us}"
        );
        let det = profile.with_sigma(0.0);
        assert_eq!(det.sample_service_time(&mut rng), Nanos::from_micros(10));
    }

    #[test]
    fn pool_dispatches_queues_and_drops_in_order() {
        let mut pool: SlotPool<u32> =
            SlotPool::new(1, SlotPolicy::FifoArrival, vec![cfg(1, 1, 100)]).unwrap();
        assert_eq!(
            pool.offer(0, Nanos::from_nanos(1), 1),
            Admission::Dispatched
        );
        assert_eq!(pool.offer(0, Nanos::from_nanos(2), 2), Admission::Queued);
        assert_eq!(pool.offer(0, Nanos::from_nanos(3), 3), Admission::Dropped);
        assert_eq!(pool.busy(), 1);
        assert_eq!(pool.in_flight(), 2);
        let next = pool.finish(0).unwrap();
        assert_eq!(next, (0, Nanos::from_nanos(2), 2));
        assert!(pool.finish(0).is_none());
        assert_eq!(pool.busy(), 0);
        let c = pool.counters(0);
        assert_eq!(
            (c.offered, c.dispatched, c.completed, c.dropped),
            (3, 2, 2, 1)
        );
    }

    #[test]
    fn fifo_policy_serves_the_earliest_arrival_across_classes() {
        let mut pool: SlotPool<&str> = SlotPool::new(
            1,
            SlotPolicy::FifoArrival,
            vec![cfg(1, 8, 100), cfg(8, 8, 100)],
        )
        .unwrap();
        assert_eq!(
            pool.offer(1, Nanos::from_nanos(1), "busy"),
            Admission::Dispatched
        );
        pool.offer(1, Nanos::from_nanos(5), "late");
        pool.offer(0, Nanos::from_nanos(3), "early");
        let (class, at, item) = pool.finish(1).unwrap();
        assert_eq!((class, at, item), (0, Nanos::from_nanos(3), "early"));
    }

    #[test]
    fn drr_shares_follow_the_weights_under_saturation() {
        // One slot, both classes permanently backlogged: dispatches must
        // follow the 3:1 weight ratio (equal per-request costs).
        let mut pool: SlotPool<u32> = SlotPool::new(
            1,
            SlotPolicy::WeightedDrr,
            vec![cfg(3, 1_000, 100), cfg(1, 1_000, 100)],
        )
        .unwrap();
        pool.offer(0, Nanos::ZERO, 0);
        for i in 0..999u32 {
            pool.offer(0, Nanos::from_nanos(u64::from(i)), i);
            pool.offer(1, Nanos::from_nanos(u64::from(i)), i);
        }
        let mut served = [0u64; 2];
        // The first finish is for the initially dispatched class-0 request.
        let mut in_service = 0usize;
        for _ in 0..400 {
            let (class, _, _) = pool.finish(in_service).unwrap();
            served[class] += 1;
            in_service = class;
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (2.5..3.5).contains(&ratio),
            "DRR served {served:?}, ratio {ratio} should track the 3:1 weights"
        );
    }

    #[test]
    fn drr_is_work_conserving_when_one_class_idles() {
        let mut pool: SlotPool<u32> = SlotPool::new(
            1,
            SlotPolicy::WeightedDrr,
            vec![cfg(7, 16, 100), cfg(1, 16, 100)],
        )
        .unwrap();
        pool.offer(1, Nanos::ZERO, 0);
        for i in 1..=5u32 {
            pool.offer(1, Nanos::from_nanos(u64::from(i)), i);
        }
        // Class 0 never offers anything; class 1 must still be served
        // back-to-back despite its low weight.
        for _ in 0..5 {
            let (class, _, _) = pool.finish(1).unwrap();
            assert_eq!(class, 1);
        }
        assert!(pool.finish(1).is_none());
    }

    #[test]
    fn zero_weight_and_zero_cost_classes_are_rejected() {
        assert!(SlotPool::<u32>::new(1, SlotPolicy::WeightedDrr, vec![cfg(0, 8, 100)]).is_err());
        assert!(SlotPool::<u32>::new(1, SlotPolicy::WeightedDrr, vec![cfg(1, 8, 0)]).is_err());
        assert!(SlotPool::<u32>::new(0, SlotPolicy::WeightedDrr, vec![cfg(1, 8, 100)]).is_err());
        assert!(SlotPool::<u32>::new(1, SlotPolicy::WeightedDrr, vec![]).is_err());
    }

    #[test]
    fn finish_batch_matches_sequential_finishes() {
        let classes = vec![cfg(3, 16, 100), cfg(1, 16, 300)];
        let mut batched: SlotPool<u32> =
            SlotPool::new(2, SlotPolicy::WeightedDrr, classes.clone()).unwrap();
        let mut sequential: SlotPool<u32> =
            SlotPool::new(2, SlotPolicy::WeightedDrr, classes).unwrap();
        for pool in [&mut batched, &mut sequential] {
            pool.offer(0, Nanos::from_nanos(1), 10);
            pool.offer(1, Nanos::from_nanos(2), 20);
            for i in 0..6u32 {
                pool.offer((i % 2) as usize, Nanos::from_nanos(3 + u64::from(i)), i);
            }
        }
        // Both in-service requests complete at the same clock advance.
        let mut from_batch = Vec::new();
        batched.finish_batch([0, 1], &mut from_batch);
        let from_seq: Vec<_> = [0, 1]
            .into_iter()
            .filter_map(|c| sequential.finish(c))
            .collect();
        assert_eq!(from_batch, from_seq);
        assert_eq!(from_batch.len(), 2, "both freed slots redispatch");
        for class in 0..2 {
            assert_eq!(
                batched.counters(class).dispatched,
                sequential.counters(class).dispatched
            );
        }
    }

    #[test]
    fn into_queued_surrenders_waiters_in_class_then_fifo_order() {
        let mut pool: SlotPool<&str> = SlotPool::new(
            1,
            SlotPolicy::FifoArrival,
            vec![cfg(1, 8, 100), cfg(1, 8, 100)],
        )
        .unwrap();
        assert_eq!(
            pool.offer(0, Nanos::from_nanos(1), "a"),
            Admission::Dispatched
        );
        pool.offer(1, Nanos::from_nanos(2), "b");
        pool.offer(0, Nanos::from_nanos(3), "c");
        pool.offer(1, Nanos::from_nanos(4), "d");
        // The node dies: only the queued waiters spill (the in-service
        // request "a" lives in the caller's completion timer).
        assert_eq!(
            pool.into_queued(),
            vec![
                (0, Nanos::from_nanos(3), "c"),
                (1, Nanos::from_nanos(2), "b"),
                (1, Nanos::from_nanos(4), "d"),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "no request in service")]
    fn finishing_an_idle_class_panics() {
        let mut pool: SlotPool<u32> =
            SlotPool::new(1, SlotPolicy::FifoArrival, vec![cfg(1, 1, 100)]).unwrap();
        pool.finish(0);
    }
}
