//! Start-up time benchmark (Figs. 13–15): 300 consecutive boots per
//! platform, reported as a CDF.

use platforms::subsystems::startup::StartupVariant;
use platforms::Platform;
use simcore::stats::Cdf;
use simcore::SimRng;

/// The start-up benchmark.
#[derive(Debug, Clone, Copy)]
pub struct StartupBenchmark {
    /// Number of consecutive startups (the paper uses 300).
    pub startups: usize,
}

impl Default for StartupBenchmark {
    fn default() -> Self {
        StartupBenchmark { startups: 300 }
    }
}

impl StartupBenchmark {
    /// Creates a benchmark with the given startup count.
    pub fn new(startups: usize) -> Self {
        StartupBenchmark {
            startups: startups.max(1),
        }
    }

    /// Boots the platform repeatedly and returns the CDF of boot times in
    /// milliseconds.
    pub fn run_cdf(&self, platform: &Platform, variant: StartupVariant, rng: &mut SimRng) -> Cdf {
        let samples: Vec<f64> = (0..self.startups)
            .map(|_| platform.startup().sample(variant, rng).as_millis_f64())
            .collect();
        Cdf::from_samples(samples).expect("startup benchmark always produces samples")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn median(id: PlatformId, variant: StartupVariant, rng: &mut SimRng) -> f64 {
        StartupBenchmark::new(100)
            .run_cdf(&id.build(), variant, rng)
            .median()
    }

    #[test]
    fn container_boot_times_match_figure_13() {
        let mut rng = SimRng::seed_from(51);
        let docker = median(PlatformId::Docker, StartupVariant::OciDirect, &mut rng);
        let gvisor = median(
            PlatformId::GvisorPtrace,
            StartupVariant::OciDirect,
            &mut rng,
        );
        let kata = median(PlatformId::Kata, StartupVariant::OciDirect, &mut rng);
        let lxc = median(PlatformId::Lxc, StartupVariant::Default, &mut rng);
        assert!((70.0..140.0).contains(&docker), "docker {docker} ms");
        assert!((150.0..250.0).contains(&gvisor), "gvisor {gvisor} ms");
        assert!((480.0..750.0).contains(&kata), "kata {kata} ms");
        assert!((680.0..920.0).contains(&lxc), "lxc {lxc} ms");
        assert!(docker < gvisor && gvisor < kata && kata < lxc);
    }

    #[test]
    fn docker_daemon_adds_about_250ms() {
        let mut rng = SimRng::seed_from(52);
        let direct = median(PlatformId::Docker, StartupVariant::OciDirect, &mut rng);
        let daemon = median(PlatformId::Docker, StartupVariant::Default, &mut rng);
        let delta = daemon - direct;
        assert!(
            (180.0..320.0).contains(&delta),
            "daemon overhead {delta} ms"
        );
    }

    #[test]
    fn hypervisor_boot_cdfs_match_figure_14() {
        let mut rng = SimRng::seed_from(53);
        let chv = median(
            PlatformId::CloudHypervisor,
            StartupVariant::Default,
            &mut rng,
        );
        let qemu = median(PlatformId::Qemu, StartupVariant::Default, &mut rng);
        let fc = median(PlatformId::Firecracker, StartupVariant::Default, &mut rng);
        let microvm = median(PlatformId::QemuMicrovm, StartupVariant::Default, &mut rng);
        assert!(
            chv < qemu && qemu < fc && fc < microvm,
            "ordering: chv={chv} qemu={qemu} fc={fc} microvm={microvm}"
        );
    }

    #[test]
    fn osv_boot_order_flips_and_measurement_methods_superimpose() {
        let mut rng = SimRng::seed_from(54);
        let osv_fc = median(
            PlatformId::OsvFirecracker,
            StartupVariant::Default,
            &mut rng,
        );
        let osv_qemu = median(PlatformId::OsvQemu, StartupVariant::Default, &mut rng);
        assert!(osv_fc < osv_qemu, "osv-fc {osv_fc} vs osv-qemu {osv_qemu}");
        let e2e = median(PlatformId::OsvQemu, StartupVariant::Default, &mut rng);
        let stdout = median(PlatformId::OsvQemu, StartupVariant::StdoutMethod, &mut rng);
        let rel = (e2e - stdout).abs() / e2e;
        assert!(rel < 0.06, "methods differ by {rel}");
    }
}
