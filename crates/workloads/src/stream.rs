//! The STREAM COPY benchmark (Fig. 8).
//!
//! STREAM's COPY kernel executes `a[i] = b[i]` over vectors totalling
//! 2.2 GiB and reports sustained bandwidth; the paper presents the average
//! of the per-run maxima over 10 runs.

use memsim::bandwidth::CopyMethod;
use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::SimRng;

/// The STREAM COPY benchmark.
#[derive(Debug, Clone, Copy)]
pub struct StreamBenchmark {
    /// Number of outer repetitions (the paper uses 10).
    pub runs: usize,
    /// Inner iterations per run; the run's result is the maximum.
    pub inner_iterations: usize,
}

impl Default for StreamBenchmark {
    fn default() -> Self {
        StreamBenchmark {
            runs: 10,
            inner_iterations: 10,
        }
    }
}

impl StreamBenchmark {
    /// Creates a benchmark with the given repetition count.
    pub fn new(runs: usize) -> Self {
        StreamBenchmark {
            runs: runs.max(1),
            inner_iterations: 10,
        }
    }

    /// Runs the benchmark; returns MiB/s statistics over the per-run maxima.
    pub fn run(&self, platform: &Platform, rng: &mut SimRng) -> RunningStats {
        (0..self.runs)
            .map(|_| {
                (0..self.inner_iterations)
                    .map(|_| {
                        platform
                            .memory()
                            .sample_copy_bandwidth(CopyMethod::StreamCopy, rng)
                            .mib_per_sec()
                    })
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    #[test]
    fn hypervisors_underperform_but_kata_and_osv_qemu_do_not() {
        let bench = StreamBenchmark::new(5);
        let mut rng = SimRng::seed_from(11);
        let value = |id: PlatformId, rng: &mut SimRng| bench.run(&id.build(), rng).mean();
        let native = value(PlatformId::Native, &mut rng);
        let qemu = value(PlatformId::Qemu, &mut rng);
        let fc = value(PlatformId::Firecracker, &mut rng);
        let kata = value(PlatformId::Kata, &mut rng);
        let osv = value(PlatformId::OsvQemu, &mut rng);
        assert!(qemu < native * 0.95, "qemu {qemu} vs native {native}");
        assert!(
            fc < qemu,
            "firecracker {fc} should be the lowest hypervisor"
        );
        assert!(kata > native * 0.9, "kata {kata} is not impaired");
        assert!(osv > native * 0.9, "osv-qemu {osv} is not impaired");
    }

    #[test]
    fn maxima_are_at_least_the_mean_of_single_samples() {
        let bench = StreamBenchmark::default();
        let p = PlatformId::Native.build();
        let stats = bench.run(&p, &mut SimRng::seed_from(2));
        assert!(
            stats.mean()
                >= p.memory()
                    .mean_copy_bandwidth(CopyMethod::StreamCopy)
                    .mib_per_sec()
                    * 0.98
        );
    }
}
