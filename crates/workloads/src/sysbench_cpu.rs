//! The Sysbench CPU benchmark (prime verification, Section 3.1).
//!
//! The paper uses this single-threaded microbenchmark to show that basic
//! CPU instruction throughput is identical on every platform. A real prime
//! sieve is included so the work unit is genuine; the platform's only
//! influence is its (negligible) instruction efficiency and scheduler
//! noise.

use platforms::subsystems::cpu::ComputeWork;
use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::{Nanos, SimRng};

/// Verifies primality by trial division up to `sqrt(n)` — the same check
/// sysbench's CPU test performs per candidate number.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n % 2 == 0 {
        return n == 2;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// Counts primes below `limit` (the benchmark's work unit).
pub fn count_primes_below(limit: u64) -> usize {
    (2..limit).filter(|n| is_prime(*n)).count()
}

/// The sysbench CPU benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SysbenchCpuBenchmark {
    /// Number of repetitions.
    pub runs: usize,
}

impl Default for SysbenchCpuBenchmark {
    fn default() -> Self {
        SysbenchCpuBenchmark { runs: 10 }
    }
}

impl SysbenchCpuBenchmark {
    /// Creates a benchmark with the given repetition count.
    pub fn new(runs: usize) -> Self {
        SysbenchCpuBenchmark { runs: runs.max(1) }
    }

    /// Runs the benchmark; returns per-run durations.
    pub fn run(&self, platform: &Platform, rng: &mut SimRng) -> Vec<Nanos> {
        let work = ComputeWork::sysbench_prime();
        (0..self.runs)
            .map(|_| platform.cpu().sample_wall_clock(work, rng))
            .collect()
    }

    /// Runs the benchmark and summarizes the event rate (relative events
    /// per second; higher is better).
    pub fn run_events_per_sec(&self, platform: &Platform, rng: &mut SimRng) -> RunningStats {
        self.run(platform, rng)
            .into_iter()
            .map(|d| 10_000.0 / d.as_secs_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    #[test]
    fn prime_checker_is_correct() {
        assert!(is_prime(2));
        assert!(is_prime(97));
        assert!(!is_prime(1));
        assert!(!is_prime(91)); // 7 * 13
        assert_eq!(count_primes_below(100), 25);
    }

    #[test]
    fn all_platforms_perform_nearly_equivalently() {
        let bench = SysbenchCpuBenchmark::new(3);
        let mut rng = SimRng::seed_from(7);
        let native = bench
            .run_events_per_sec(&PlatformId::Native.build(), &mut rng.split("native"))
            .mean();
        for id in [
            PlatformId::Docker,
            PlatformId::Firecracker,
            PlatformId::GvisorPtrace,
            PlatformId::OsvQemu,
        ] {
            let rate = bench
                .run_events_per_sec(&id.build(), &mut rng.split(id.label()))
                .mean();
            let rel = (rate - native).abs() / native;
            assert!(rel < 0.1, "{id:?} deviates by {rel}");
        }
    }
}
