//! Sysbench `oltp_read_write` against the mini relational engine (Fig. 17).
//!
//! The benchmark loads rows into three tables and then, from an increasing
//! number of client threads, executes transactions of one SELECT, UPDATE,
//! DELETE and INSERT each. Reported metric: transactions per second.
//!
//! The per-transaction cost combines three ingredients:
//!
//! * real execution against [`relstore`] (locks, B-Tree maintenance),
//!   which yields the intrinsic contention profile;
//! * the platform's per-query network round trip and syscall costs;
//! * the platform's scheduler-induced contention (Universal Scalability
//!   Law parameters), which produces the ~50-thread peak on the isolation
//!   platforms versus ~110 threads natively and the flat, low curves of
//!   the custom-scheduler platforms (OSv, gVisor).

use memsim::tlb::PageSize;
use oskern::sched::UslParams;
use oskern::syscall::SyscallClass;
use platforms::Platform;
use relstore::{Database, Row, StoreError};
use simcore::{Nanos, SimRng};

/// One point of the thread sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OltpPoint {
    /// Number of client threads.
    pub threads: usize,
    /// Transactions per second (mean over the runs).
    pub tps: f64,
    /// Standard deviation over the runs.
    pub tps_std: f64,
}

/// The OLTP benchmark configuration.
#[derive(Debug, Clone)]
pub struct OltpBenchmark {
    /// Rows per table (the paper loads 1 million; tests scale this down).
    pub rows_per_table: u64,
    /// Number of tables.
    pub tables: usize,
    /// Thread counts to sweep (the paper uses 10..160).
    pub thread_counts: Vec<usize>,
    /// Runs per thread count (the paper uses 3).
    pub runs: usize,
    /// Transactions executed against the real engine per run (to observe
    /// lock contention).
    pub sampled_transactions: usize,
}

impl Default for OltpBenchmark {
    fn default() -> Self {
        OltpBenchmark {
            rows_per_table: 100_000,
            tables: 3,
            thread_counts: vec![10, 20, 40, 50, 80, 110, 160],
            runs: 3,
            sampled_transactions: 2_000,
        }
    }
}

/// The workload's intrinsic contention profile (row conflicts, B-Tree
/// latching) expressed as USL parameters; combined with the scheduler's.
const WORKLOAD_CONTENTION: UslParams = UslParams {
    alpha: 0.015,
    beta: 6.0e-5,
};

impl OltpBenchmark {
    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick() -> Self {
        OltpBenchmark {
            rows_per_table: 2_000,
            tables: 1,
            thread_counts: vec![10, 50, 110, 160],
            runs: 3,
            sampled_transactions: 300,
        }
    }

    /// Runs the thread sweep on one platform.
    pub fn run(&self, platform: &Platform, rng: &mut SimRng) -> Vec<OltpPoint> {
        self.thread_counts
            .iter()
            .map(|&threads| self.run_point(platform, threads, rng))
            .collect()
    }

    /// Runs the whole thread sweep once and returns one `(threads, tps)`
    /// sample per sweep point.
    ///
    /// This is the unit the parallel executor shards on: each trial sweeps
    /// every thread count once from its own derived random stream, and the
    /// harness merges the per-trial samples into the figure's mean/std.
    pub fn run_trial(&self, platform: &Platform, rng: &mut SimRng) -> Vec<(usize, f64)> {
        self.thread_counts
            .iter()
            .map(|&threads| (threads, self.run_once(platform, threads, rng)))
            .collect()
    }

    fn run_point(&self, platform: &Platform, threads: usize, rng: &mut SimRng) -> OltpPoint {
        let mut samples = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            samples.push(self.run_once(platform, threads, rng));
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        OltpPoint {
            threads,
            tps: mean,
            tps_std: var.sqrt(),
        }
    }

    /// The combined workload + scheduler contention profile of this
    /// benchmark on `platform`, expressed as USL parameters.
    ///
    /// Shared with the open-loop [`crate::loadgen`] subsystem so both
    /// paths scale service capacity identically with concurrency.
    pub fn contention(platform: &Platform) -> UslParams {
        WORKLOAD_CONTENTION.combine(&platform.cpu().contention_params())
    }

    /// The uncontended service time of one `oltp_read_write` transaction on
    /// this platform: four queries (each one network round trip plus the
    /// request/response syscalls), engine CPU work scaled by the platform's
    /// memory behaviour, and one fsync-like I/O on commit.
    ///
    /// This is the service-time model shared between the closed-loop thread
    /// sweep here and the open-loop [`crate::loadgen`] subsystem.
    pub fn per_txn_service_time(&self, platform: &Platform) -> Nanos {
        let queries = 4.0;
        let rtt = platform.network().mean_rtt().as_secs_f64();
        let syscalls = (platform.syscalls().dispatch_cost(SyscallClass::NetReceive)
            + platform.syscalls().dispatch_cost(SyscallClass::NetSend))
        .as_secs_f64();
        let mem_factor = {
            let native = memsim::latency::RandomAccessModel::new(
                memsim::config::MemoryHierarchy::epyc2(),
                memsim::paging::PagingMode::Native,
            );
            let own = platform
                .memory()
                .mean_access_latency(1 << 26, PageSize::Small4K)
                .as_secs_f64();
            let base = native
                .mean_extra_latency(1 << 26, PageSize::Small4K)
                .as_secs_f64();
            (own / base).max(1.0)
        };
        let engine_cpu = Nanos::from_micros(140).as_secs_f64() * mem_factor;
        let commit_io = if platform.storage().is_excluded() {
            Nanos::from_micros(120).as_secs_f64()
        } else {
            let stack = platform.storage().build_stack();
            (Nanos::from_micros(30) + stack.layer_latency()).as_secs_f64()
        };
        Nanos::from_secs_f64(queries * (rtt + syscalls) + engine_cpu + commit_io)
    }

    fn run_once(&self, platform: &Platform, threads: usize, rng: &mut SimRng) -> f64 {
        // Execute a sample of real transactions to measure engine-level
        // conflict probability at this concurrency.
        let db = Database::new();
        let tables = db.populate_sysbench(self.tables, self.rows_per_table);
        let mut conflicts = 0u64;
        let mut next_id = self.rows_per_table + 1;
        for i in 0..self.sampled_transactions {
            let table = &tables[i % tables.len()];
            // Model concurrent writers by pre-locking a few rows "owned" by
            // other threads proportional to the concurrency level.
            let foreign_locks: Vec<u64> = (0..(threads / 8))
                .map(|_| 1 + rng.index(self.rows_per_table as usize) as u64)
                .filter(|id| table.locks().try_lock(*id))
                .collect();
            let mut txn = db.begin();
            let target = 1 + rng.index(self.rows_per_table as usize) as u64;
            let outcome: Result<(), StoreError> = (|| {
                let _ = txn.select(table, target)?;
                txn.update(table, target, rng.index(1_000) as u64)?;
                let delete_target = 1 + rng.index(self.rows_per_table as usize) as u64;
                match txn.delete(table, delete_target) {
                    Ok(_) => {
                        txn.insert(table, Row::new(delete_target, 1, "reinserted".into()))?;
                    }
                    Err(StoreError::RowNotFound(_)) => {
                        txn.insert(table, Row::new(next_id, 1, "fresh".into()))?;
                        next_id += 1;
                    }
                    Err(e) => return Err(e),
                }
                Ok(())
            })();
            match outcome {
                Ok(()) => txn.commit(),
                Err(_) => {
                    conflicts += 1;
                    txn.rollback();
                }
            }
            table.locks().unlock_all(&foreign_locks);
        }
        let conflict_ratio = conflicts as f64 / self.sampled_transactions as f64;

        let per_txn = self.per_txn_service_time(platform).as_secs_f64();

        // Scalability: workload contention plus scheduler contention, and
        // engine-level conflicts turn into retries.
        let usl = Self::contention(platform);
        let capacity = usl.capacity(threads);
        let retry_penalty = 1.0 + conflict_ratio * (threads as f64 / 16.0).min(4.0);
        let tps = capacity / (per_txn * retry_penalty);
        // A full sysbench run averages over many seconds, so run-to-run
        // variation is small (the paper's Fig. 17 error bars are ~2%).
        rng.normal_pos(tps, tps * 0.02)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn peak(points: &[OltpPoint]) -> usize {
        points
            .iter()
            .max_by(|a, b| a.tps.partial_cmp(&b.tps).unwrap())
            .map(|p| p.threads)
            .unwrap()
    }

    fn best(points: &[OltpPoint]) -> f64 {
        points.iter().map(|p| p.tps).fold(0.0, f64::max)
    }

    #[test]
    fn thread_sweep_reproduces_figure_17_groups() {
        let bench = OltpBenchmark::quick();
        let mut rng = SimRng::seed_from(71);
        let native = bench.run(&PlatformId::Native.build(), &mut rng.split("native"));
        let docker = bench.run(&PlatformId::Docker.build(), &mut rng.split("docker"));
        let qemu = bench.run(&PlatformId::Qemu.build(), &mut rng.split("qemu"));
        let kata = bench.run(&PlatformId::Kata.build(), &mut rng.split("kata"));
        let fc = bench.run(&PlatformId::Firecracker.build(), &mut rng.split("fc"));
        let gvisor = bench.run(&PlatformId::GvisorPtrace.build(), &mut rng.split("gvisor"));
        let osv = bench.run(&PlatformId::OsvQemu.build(), &mut rng.split("osv"));

        // Native peaks at a much higher thread count than the platforms.
        assert_eq!(peak(&native), 110, "native peak {:?}", native);
        assert!(peak(&qemu) <= 50, "qemu peak {}", peak(&qemu));
        assert!(peak(&docker) <= 110);

        // Group 1: OSv and gVisor severely underperform and are flat.
        let group3 = best(&docker).min(best(&qemu)).min(best(&native));
        assert!(
            best(&osv) < group3 * 0.45,
            "osv {} vs group3 {group3}",
            best(&osv)
        );
        assert!(best(&gvisor) < group3 * 0.45, "gvisor {}", best(&gvisor));

        // Group 2: Firecracker and Kata land around half of the main group.
        assert!(
            best(&fc) < group3 * 0.8,
            "fc {} vs group3 {group3}",
            best(&fc)
        );
        assert!(
            best(&kata) < group3 * 0.85,
            "kata {} vs group3 {group3}",
            best(&kata)
        );
        assert!(
            best(&fc) > best(&osv),
            "fc should beat the custom-scheduler group"
        );

        // Group 3: the remaining platforms are within a band of each other.
        assert!(best(&docker) > group3 * 0.8);
    }

    #[test]
    fn a_trial_covers_the_whole_sweep() {
        let bench = OltpBenchmark::quick();
        let platform = PlatformId::Native.build();
        let trial = bench.run_trial(&platform, &mut SimRng::seed_from(73));
        assert_eq!(
            trial.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            bench.thread_counts
        );
        assert!(trial.iter().all(|(_, tps)| *tps > 0.0));
    }

    #[test]
    fn real_engine_conflicts_increase_with_concurrency() {
        let bench = OltpBenchmark::quick();
        let mut rng = SimRng::seed_from(72);
        let p = PlatformId::Native.build();
        let low = bench.run_point(&p, 10, &mut rng);
        let high = bench.run_point(&p, 160, &mut rng);
        // Throughput per thread must degrade at high concurrency.
        assert!(high.tps / 160.0 < low.tps / 10.0);
    }
}
