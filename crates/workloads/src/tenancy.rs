//! Multi-tenant co-location (beyond the paper).
//!
//! The paper asks how well isolation platforms insulate a workload from
//! its environment, and [`crate::loadgen`] measures one population's
//! behaviour under offered load — but neither observes isolation *between*
//! workloads sharing a platform. This subsystem co-locates several client
//! populations on one platform model: each [`TenantSpec`] names a backend,
//! an arrival process (Poisson, or a bursty MMPP-style on–off source built
//! from [`simcore::dist`] exponentials), a connection population, an
//! offered-load fraction, a DRR weight and a p99 SLO target. Every tenant
//! gets its own **bounded admission queue** in front of the shared derated
//! service-slot pool, scheduled by the weighted deficit-round-robin core
//! in [`crate::slots`] (or by unweighted global-FIFO sharing, the baseline
//! the weighted scheduler is judged against).
//!
//! The headline experiment is [`TenancyBenchmark`]: a latency-sensitive
//! *victim* tenant at fixed load co-located with a bursty *aggressor*
//! swept from light load into overload. Per sweep point it reports each
//! tenant's p50/p95/p99 sojourn time, achieved throughput, drop rate and
//! SLO-violation fraction, the victim's p99 under unweighted FIFO sharing,
//! and the **isolation index** — the victim's p99 inflation relative to a
//! solo run of the same victim arrival/service streams on the same
//! platform.
//!
//! Within a trial the per-tenant arrival and service streams are common
//! random numbers across sweep points and scheduler policies: the
//! aggressor's arrival pattern is a fixed unit-rate sample path scaled by
//! its offered rate (on/off phase durations scale with it, preserving the
//! burst shape), so victim-latency curves are monotone in aggressor load
//! by coupling and the DRR-vs-FIFO comparison is apples to apples. All
//! streams derive from the cell's random stream, keeping figures
//! bit-identical for any executor worker count.

use platforms::Platform;
use simcore::dist::Distribution;
use simcore::error::SimError;
use simcore::obs::{Recorder, SpanKind};
use simcore::resource::CompletionTimer;
use simcore::stats::Cdf;
use simcore::{Nanos, SimRng, Simulation};

use crate::slots::{
    backend_profile, Admission, BackendState, ClassConfig, LoadBackend, ServiceProfile, SlotPolicy,
    SlotPool, StoreSnapshot,
};

/// The arrival process of one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at the tenant's offered rate.
    Poisson,
    /// A two-state MMPP-style on–off source: exponentially distributed ON
    /// phases (arriving at `rate / duty_cycle`, so the long-run rate still
    /// matches the offered rate) alternate with silent OFF phases. Phase
    /// durations are parameterized in **arrivals per burst**, so the whole
    /// sample path scales with the offered rate and sweeping the rate
    /// compresses a fixed burst pattern instead of reshaping it.
    OnOff {
        /// Long-run fraction of time the source is ON, in `(0, 1)`.
        duty_cycle: f64,
        /// Mean arrivals per ON phase (burst length), `> 0`.
        burst_arrivals: f64,
    },
}

impl ArrivalProcess {
    /// Validates the process parameters.
    fn validate(&self, tenant: &str) -> Result<(), SimError> {
        if let ArrivalProcess::OnOff {
            duty_cycle,
            burst_arrivals,
        } = self
        {
            if !(*duty_cycle > 0.0 && *duty_cycle < 1.0) {
                return Err(SimError::InvalidConfig(format!(
                    "tenant {tenant}: on-off duty cycle {duty_cycle} must lie in (0, 1)"
                )));
            }
            if burst_arrivals.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(SimError::InvalidConfig(format!(
                    "tenant {tenant}: burst length {burst_arrivals} must be positive"
                )));
            }
        }
        Ok(())
    }
}

/// Stateful interarrival-gap sampler for one tenant.
///
/// All sampled durations are proportional to `1 / rate` and the random
/// stream is consumed in a rate-independent order, so two generators with
/// the same seed and different rates produce the **same sample path on a
/// scaled clock** — the common-random-numbers property the sweep's
/// monotonicity relies on.
#[derive(Debug, Clone)]
struct ArrivalGen {
    process: ArrivalProcess,
    rate: f64,
    rng: SimRng,
    /// Seconds left in the current ON phase (on–off only).
    on_remaining: f64,
}

impl ArrivalGen {
    fn new(process: ArrivalProcess, rate: f64, rng: SimRng) -> Self {
        ArrivalGen {
            process,
            rate: rate.max(f64::MIN_POSITIVE),
            rng,
            on_remaining: 0.0,
        }
    }

    /// The next interarrival gap in seconds.
    fn next_gap(&mut self) -> f64 {
        match self.process {
            ArrivalProcess::Poisson => self.rng.exponential(1.0) / self.rate,
            ArrivalProcess::OnOff {
                duty_cycle,
                burst_arrivals,
            } => {
                let on_rate = self.rate / duty_cycle;
                let mean_on = burst_arrivals / on_rate;
                let mean_off = mean_on * (1.0 - duty_cycle) / duty_cycle;
                let mut gap = 0.0;
                loop {
                    if self.on_remaining <= 0.0 {
                        // Sit out an OFF phase, then start a fresh burst.
                        gap += Distribution::exponential(1.0 / mean_off).sample(&mut self.rng);
                        self.on_remaining =
                            Distribution::exponential(1.0 / mean_on).sample(&mut self.rng);
                    }
                    let step = self.rng.exponential(1.0) / on_rate;
                    if step <= self.on_remaining {
                        self.on_remaining -= step;
                        return gap + step;
                    }
                    gap += self.on_remaining;
                    self.on_remaining = 0.0;
                }
            }
        }
    }
}

/// One co-located client population.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name — figure label and random-stream derivation component.
    pub name: String,
    /// Which simulated backend this tenant drives.
    pub backend: LoadBackend,
    /// The tenant's arrival process.
    pub arrivals: ArrivalProcess,
    /// Connection population the arrivals are spread over.
    pub clients: usize,
    /// Offered load as a fraction of the full pool's saturation capacity
    /// for this tenant's backend (1.0 = the whole pool, were it alone).
    pub offered_fraction: f64,
    /// Deficit-round-robin weight (relative service share under
    /// [`SlotPolicy::WeightedDrr`]).
    pub weight: u64,
    /// Bounded per-tenant admission queue depth.
    pub queue_capacity: usize,
    /// p99 SLO target as a multiple of the tenant's mean (uncontended)
    /// service time on the platform under test; completions slower than
    /// this count toward the SLO-violation fraction.
    pub slo_service_multiple: f64,
}

impl TenantSpec {
    fn validate(&self) -> Result<(), SimError> {
        self.arrivals.validate(&self.name)?;
        if self.offered_fraction < 0.0 || !self.offered_fraction.is_finite() {
            return Err(SimError::InvalidConfig(format!(
                "tenant {}: offered fraction {} must be finite and non-negative",
                self.name, self.offered_fraction
            )));
        }
        Ok(())
    }
}

/// One tenant's measured outcome at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPoint {
    /// Offered load as a fraction of the pool's capacity for this backend.
    pub offered_fraction: f64,
    /// Offered load in requests per second.
    pub offered_per_sec: f64,
    /// Achieved (completed) throughput in requests per second.
    pub achieved_per_sec: f64,
    /// Median sojourn time (queueing + service) in microseconds.
    pub p50_us: f64,
    /// 95th-percentile sojourn time in microseconds.
    pub p95_us: f64,
    /// 99th-percentile sojourn time in microseconds.
    pub p99_us: f64,
    /// Mean sojourn time in microseconds.
    pub mean_us: f64,
    /// Requests issued (arrivals) in the window.
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at the tenant's bounded admission queue.
    pub dropped: u64,
    /// `dropped / issued` (0 when nothing was issued).
    pub drop_rate: f64,
    /// Fraction of completed requests slower than the tenant's p99 SLO
    /// target.
    pub slo_violation: f64,
    /// The absolute SLO threshold this platform/tenant pair resolved to.
    pub slo_us: f64,
    /// Live entries (kv) or rows (sql) in the tenant's sampled backend
    /// store at the end of the window — shard-level parity with
    /// [`crate::ClusterPoint::store_entries`].
    pub store_entries: u64,
    /// Store evictions (kv) or row deletes (sql) over the window.
    pub store_evictions: u64,
    /// Row-lock contention events in the tenant's backend (sql only).
    pub store_lock_waits: u64,
}

/// One point of the victim-vs-aggressor sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocationPoint {
    /// The aggressor's offered fraction at this point.
    pub aggressor_fraction: f64,
    /// The victim tenant under the weighted (DRR) scheduler.
    pub victim: TenantPoint,
    /// The aggressor tenant under the weighted (DRR) scheduler.
    pub aggressor: TenantPoint,
    /// The victim's p99 under unweighted global-FIFO sharing of the same
    /// arrival/service streams.
    pub victim_fifo_p99_us: f64,
    /// The victim's p99 running **alone** on the platform (same streams).
    pub victim_solo_p99_us: f64,
    /// Isolation index: victim p99 (weighted, co-located) / victim p99
    /// (solo). 1.0 = perfect isolation.
    pub isolation_index: f64,
}

/// The victim-vs-aggressor co-location experiment on one backend.
#[derive(Debug, Clone)]
pub struct TenancyBenchmark {
    /// The latency-sensitive tenant held at fixed load.
    pub victim: TenantSpec,
    /// The interfering tenant whose offered fraction is swept.
    pub aggressor: TenantSpec,
    /// The aggressor's offered fractions, from light load into overload.
    pub aggressor_fractions: Vec<f64>,
    /// Width of the shared service-slot pool.
    pub servers: usize,
    /// Victim arrivals per sweep point; sets the measurement window
    /// (`victim_requests / victim rate`), which all tenants share.
    pub victim_requests: usize,
    /// Measurement repetitions (trials) per sweep point.
    pub runs: usize,
    /// Execute one real backend operation per this many admitted requests.
    pub op_sample_every: u64,
    /// Log-normal sigma of per-request service times.
    pub service_sigma: f64,
}

impl TenancyBenchmark {
    /// The full-scale victim/aggressor configuration on one backend: a
    /// Poisson victim at 35% of pool capacity with a 3x DRR weight, against
    /// a bursty on–off aggressor (30% duty cycle, ~64-request bursts).
    pub fn new(backend: LoadBackend) -> Self {
        TenancyBenchmark {
            victim: TenantSpec {
                name: "victim".to_string(),
                backend,
                arrivals: ArrivalProcess::Poisson,
                clients: 512,
                offered_fraction: 0.35,
                weight: 3,
                queue_capacity: 1_024,
                slo_service_multiple: 8.0,
            },
            aggressor: TenantSpec {
                name: "aggressor".to_string(),
                backend,
                arrivals: ArrivalProcess::OnOff {
                    duty_cycle: 0.3,
                    burst_arrivals: 64.0,
                },
                clients: 2_048,
                offered_fraction: 1.0, // swept per point
                weight: 1,
                queue_capacity: 1_024,
                slo_service_multiple: 16.0,
            },
            aggressor_fractions: vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.25],
            servers: 16,
            victim_requests: 8_000,
            runs: 3,
            op_sample_every: 8,
            service_sigma: 0.25,
        }
    }

    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick(backend: LoadBackend) -> Self {
        TenancyBenchmark {
            victim_requests: 1_200,
            runs: 2,
            ..TenancyBenchmark::new(backend)
        }
    }

    /// The derated service profile of one tenant on `platform` — the same
    /// per-request cost models as the closed-loop paths, with this
    /// benchmark's per-request service-time sigma.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate profile (empty
    /// pool or zero/non-finite derated service time) — the tenancy
    /// equivalent of the [`crate::loadgen`] capacity guard.
    pub fn tenant_profile(
        &self,
        platform: &Platform,
        tenant: &TenantSpec,
    ) -> Result<ServiceProfile, SimError> {
        Ok(backend_profile(tenant.backend, platform, self.servers)?.with_sigma(self.service_sigma))
    }

    /// Runs one co-located window over an arbitrary tenant set under
    /// `policy` and returns one [`TenantPoint`] per tenant, in input
    /// order. The first tenant anchors the measurement window
    /// ([`TenancyBenchmark::victim_requests`] of its arrivals).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on an empty tenant set, invalid
    /// tenant parameters, or a degenerate service profile.
    pub fn run_colocated(
        &self,
        platform: &Platform,
        tenants: &[TenantSpec],
        policy: SlotPolicy,
        rng: &mut SimRng,
    ) -> Result<Vec<TenantPoint>, SimError> {
        let streams = tenants
            .iter()
            .map(|t| TenantStreams::derive(t, rng))
            .collect::<Vec<_>>();
        self.run_once(platform, tenants, policy, &streams, rng.split("misc"), None)
            .map(|(points, _)| points)
    }

    /// [`TenancyBenchmark::run_colocated`] with a trace [`Recorder`]
    /// attached: each tenant becomes a lane carrying its admission-wait
    /// and slot-service spans and its windowed arrival/drop/queue-depth
    /// series, and the run's event-core counter profile is attached.
    ///
    /// Tracing is observation only — the recorder consumes no random
    /// draws, so the returned points are bit-identical to the untraced
    /// [`TenancyBenchmark::run_colocated`] of the same streams.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TenancyBenchmark::run_colocated`].
    pub fn run_colocated_traced(
        &self,
        platform: &Platform,
        tenants: &[TenantSpec],
        policy: SlotPolicy,
        rng: &mut SimRng,
        recorder: Recorder,
    ) -> Result<(Vec<TenantPoint>, Recorder), SimError> {
        let streams = tenants
            .iter()
            .map(|t| TenantStreams::derive(t, rng))
            .collect::<Vec<_>>();
        let (points, obs) = self.run_once(
            platform,
            tenants,
            policy,
            &streams,
            rng.split("misc"),
            Some(recorder),
        )?;
        Ok((points, obs.expect("the recorder threads through the run")))
    }

    /// Runs the whole victim-vs-aggressor sweep once: a solo victim
    /// baseline, then one weighted (DRR) and one unweighted (FIFO) run per
    /// aggressor fraction, all on common per-tenant random streams.
    ///
    /// This is the unit the parallel executor shards on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on invalid tenant parameters or
    /// a degenerate service profile.
    pub fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<ColocationPoint>, SimError> {
        let victim_streams = TenantStreams::derive(&self.victim, rng);
        let aggressor_streams = TenantStreams::derive(&self.aggressor, rng);
        let mut misc = rng.split("misc");

        // Solo baseline: the victim's own streams, nobody else on the pool.
        let (solo, _) = self.run_once(
            platform,
            std::slice::from_ref(&self.victim),
            SlotPolicy::WeightedDrr,
            std::slice::from_ref(&victim_streams),
            misc.split("solo"),
            None,
        )?;
        let solo_p99 = solo[0].p99_us;

        let mut points = Vec::with_capacity(self.aggressor_fractions.len());
        for &fraction in &self.aggressor_fractions {
            let mut aggressor = self.aggressor.clone();
            aggressor.offered_fraction = fraction;
            let tenants = [self.victim.clone(), aggressor];
            let streams = [victim_streams.clone(), aggressor_streams.clone()];
            let (drr, _) = self.run_once(
                platform,
                &tenants,
                SlotPolicy::WeightedDrr,
                &streams,
                misc.split("drr"),
                None,
            )?;
            let (fifo, _) = self.run_once(
                platform,
                &tenants,
                SlotPolicy::FifoArrival,
                &streams,
                misc.split("fifo"),
                None,
            )?;
            let [victim, aggressor] = <[TenantPoint; 2]>::try_from(drr)
                .expect("a two-tenant run yields two tenant points");
            let isolation_index = if solo_p99 > 0.0 {
                victim.p99_us / solo_p99
            } else {
                1.0
            };
            points.push(ColocationPoint {
                aggressor_fraction: fraction,
                victim,
                aggressor,
                victim_fifo_p99_us: fifo[0].p99_us,
                victim_solo_p99_us: solo_p99,
                isolation_index,
            });
        }
        Ok(points)
    }

    /// One simulated window: every tenant's arrival source drives the
    /// shared pool, and the results are folded into per-tenant points.
    fn run_once(
        &self,
        platform: &Platform,
        tenants: &[TenantSpec],
        policy: SlotPolicy,
        streams: &[TenantStreams],
        misc_rng: SimRng,
        mut obs: Option<Recorder>,
    ) -> Result<(Vec<TenantPoint>, Option<Recorder>), SimError> {
        if tenants.is_empty() {
            return Err(SimError::InvalidConfig(
                "a co-located run needs at least one tenant".into(),
            ));
        }
        for tenant in tenants {
            tenant.validate()?;
        }
        let profiles = tenants
            .iter()
            .map(|t| self.tenant_profile(platform, t))
            .collect::<Result<Vec<_>, _>>()?;

        // The first tenant anchors the window: however the aggressor rate
        // is swept, every run of a trial measures the same victim span.
        let anchor_rate = profiles[0].capacity_per_sec() * tenants[0].offered_fraction;
        if anchor_rate <= 0.0 {
            return Err(SimError::InvalidConfig(
                "the anchor tenant must offer a positive load".into(),
            ));
        }
        let window_secs = self.victim_requests.max(1) as f64 / anchor_rate;

        let classes = tenants
            .iter()
            .zip(&profiles)
            .map(|(t, p)| ClassConfig {
                weight: t.weight,
                queue_capacity: t.queue_capacity,
                mean_cost: p.service_time,
            })
            .collect();
        let pool = SlotPool::new(self.servers, policy, classes)?;

        let runtime = tenants
            .iter()
            .zip(&profiles)
            .zip(streams)
            .map(|((spec, profile), streams)| {
                let rate = profile.capacity_per_sec() * spec.offered_fraction;
                TenantRt {
                    spec: spec.clone(),
                    profile: *profile,
                    gen: ArrivalGen::new(spec.arrivals, rate, streams.arrival.clone()),
                    service_rng: streams.service.clone(),
                    offered_per_sec: rate,
                    clock_secs: 0.0,
                    window_secs,
                    conns: vec![ConnState::default(); spec.clients.max(1)],
                    latencies_us: Vec::new(),
                    issued: 0,
                    completed: 0,
                    dropped: 0,
                }
            })
            .collect::<Vec<_>>();

        // One trace lane per tenant, registered in input order.
        let obs_lanes = match obs.as_mut() {
            Some(o) => tenants.iter().map(|t| o.lane(&t.name)).collect(),
            None => Vec::new(),
        };
        let mut sim: Simulation<TenantSim> = Simulation::new();
        let mut state = TenantSim {
            pool,
            backends: tenants
                .iter()
                .map(|t| BackendState::build(t.backend))
                .collect(),
            tenants: runtime,
            misc_rng,
            op_sample_every: self.op_sample_every.max(1),
            admitted: 0,
            completions: CompletionTimer::new(),
            drain_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            next_request: 0,
            obs,
            obs_lanes,
        };
        for tenant in 0..tenants.len() {
            sim.schedule_at(Nanos::ZERO, move |sim, st: &mut TenantSim| {
                st.generate(sim, tenant)
            });
        }
        sim.run(&mut state);
        if let Some(obs) = state.obs.as_mut() {
            // The wheel profile of the window: the simulation's own queue
            // plus the batched completion timer's.
            obs.set_core_counters(sim.counters().merged(state.completions.counters()));
        }
        let obs = state.obs.take();
        let end = sim.now();
        let stores: Vec<StoreSnapshot> = state
            .backends
            .iter()
            .map(BackendState::store_stats)
            .collect();
        Ok((
            state
                .tenants
                .into_iter()
                .zip(stores)
                .map(|(t, store)| t.into_point(end, store))
                .collect(),
            obs,
        ))
    }
}

/// The per-tenant random streams of one trial, shared (cloned) across the
/// trial's sweep points and scheduler policies.
#[derive(Debug, Clone)]
struct TenantStreams {
    arrival: SimRng,
    service: SimRng,
}

impl TenantStreams {
    fn derive(tenant: &TenantSpec, rng: &mut SimRng) -> Self {
        TenantStreams {
            arrival: rng.split(&format!("arrivals/{}", tenant.name)),
            service: rng.split(&format!("service/{}", tenant.name)),
        }
    }
}

/// Per-connection accounting of one tenant's population.
#[derive(Debug, Default, Clone, Copy)]
struct ConnState {
    issued: u64,
    completed: u64,
    dropped: u64,
}

/// A request in the admission queue or in service.
#[derive(Debug, Clone, Copy)]
struct Req {
    /// Deterministic arrival index (across all tenants, in handler
    /// order), the identity trace sampling keys on.
    id: u64,
    arrived: Nanos,
    tenant: u32,
    conn: u32,
}

/// Arrival events are pre-scheduled in chunks of this size per tenant,
/// bounding the pending-event count.
const ARRIVAL_CHUNK: usize = 256;

/// Runtime state of one tenant inside the simulation.
struct TenantRt {
    spec: TenantSpec,
    profile: ServiceProfile,
    gen: ArrivalGen,
    service_rng: SimRng,
    offered_per_sec: f64,
    /// The tenant's arrival clock in seconds (monotone across chunks).
    clock_secs: f64,
    window_secs: f64,
    conns: Vec<ConnState>,
    latencies_us: Vec<f64>,
    issued: u64,
    completed: u64,
    dropped: u64,
}

impl TenantRt {
    fn into_point(self, end: Nanos, store: StoreSnapshot) -> TenantPoint {
        let duration = end.as_secs_f64().max(f64::MIN_POSITIVE);
        let slo_us = self.profile.service_time.as_micros_f64() * self.spec.slo_service_multiple;
        let issued: u64 = self.conns.iter().map(|c| c.issued).sum();
        debug_assert_eq!(issued, self.issued);
        debug_assert_eq!(issued, self.completed + self.dropped);
        let (p50, p95, p99, mean, violation) = match Cdf::from_samples(self.latencies_us) {
            Ok(cdf) => (
                cdf.percentile(50.0),
                cdf.percentile(95.0),
                cdf.percentile(99.0),
                cdf.mean(),
                1.0 - cdf.fraction_below(slo_us),
            ),
            Err(_) => (0.0, 0.0, 0.0, 0.0, 0.0),
        };
        TenantPoint {
            offered_fraction: self.spec.offered_fraction,
            offered_per_sec: self.offered_per_sec,
            achieved_per_sec: self.completed as f64 / duration,
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            mean_us: mean,
            issued,
            completed: self.completed,
            dropped: self.dropped,
            drop_rate: if issued > 0 {
                self.dropped as f64 / issued as f64
            } else {
                0.0
            },
            slo_violation: violation,
            slo_us,
            store_entries: store.entries,
            store_evictions: store.evictions,
            store_lock_waits: store.lock_waits,
        }
    }
}

/// The discrete-event state of one co-located window.
struct TenantSim {
    pool: SlotPool<Req>,
    tenants: Vec<TenantRt>,
    backends: Vec<BackendState>,
    misc_rng: SimRng,
    op_sample_every: u64,
    admitted: u64,
    /// Batched completion drain shared by every tenant: coalesced wakes
    /// drain a whole timing-wheel slot of completions per clock advance.
    completions: CompletionTimer<Req>,
    drain_buf: Vec<(Nanos, Req)>,
    dispatch_buf: Vec<(usize, Nanos, Req)>,
    /// Arrival indices double as trace-sampling identities.
    next_request: u64,
    /// `None` is the zero-cost untraced path.
    obs: Option<Recorder>,
    /// One lane per tenant, in tenant order.
    obs_lanes: Vec<u32>,
}

impl TenantSim {
    /// Pre-schedules the next chunk of one tenant's arrivals; reschedules
    /// itself at the chunk's last arrival while the window is open.
    fn generate(&mut self, sim: &mut Simulation<TenantSim>, tenant: usize) {
        let t = &mut self.tenants[tenant];
        let mut last_at = None;
        for _ in 0..ARRIVAL_CHUNK {
            t.clock_secs += t.gen.next_gap();
            if t.clock_secs > t.window_secs {
                return;
            }
            let at = Nanos::from_secs_f64(t.clock_secs);
            sim.schedule_at(at, move |sim, st: &mut TenantSim| st.arrive(sim, tenant));
            last_at = Some(at);
        }
        if let Some(at) = last_at {
            sim.schedule_at(at, move |sim, st: &mut TenantSim| st.generate(sim, tenant));
        }
    }

    /// One arrival: attribute it to a connection, then dispatch, queue or
    /// drop at the shared pool.
    fn arrive(&mut self, sim: &mut Simulation<TenantSim>, tenant: usize) {
        let now = sim.now();
        let conn = self.misc_rng.index(self.tenants[tenant].conns.len()) as u32;
        let t = &mut self.tenants[tenant];
        t.issued += 1;
        t.conns[conn as usize].issued += 1;
        let req = Req {
            id: self.next_request,
            arrived: now,
            tenant: tenant as u32,
            conn,
        };
        self.next_request += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.count_arrival(self.obs_lanes[tenant], now);
        }
        match self.pool.offer(tenant, now, req) {
            Admission::Dispatched => {
                self.admit(tenant);
                self.start_service(sim, req);
            }
            Admission::Queued => self.admit(tenant),
            Admission::Dropped => {
                let t = &mut self.tenants[tenant];
                t.dropped += 1;
                t.conns[conn as usize].dropped += 1;
                if let Some(obs) = self.obs.as_mut() {
                    obs.count_drop(self.obs_lanes[tenant], now);
                }
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.gauge(
                self.obs_lanes[tenant],
                now,
                self.pool.queued(tenant),
                self.pool.busy(),
            );
        }
    }

    /// Samples the dispatched request's service time from its tenant's
    /// stream and registers its completion with the batched timer, arming
    /// a scheduler wake only when it became the earliest pending one.
    fn start_service(&mut self, sim: &mut Simulation<TenantSim>, req: Req) {
        let t = &mut self.tenants[req.tenant as usize];
        let service = t.profile.sample_service_time(&mut t.service_rng);
        let now = sim.now();
        if let Some(obs) = self.obs.as_mut() {
            let lane = self.obs_lanes[req.tenant as usize];
            obs.span(SpanKind::AdmissionWait, req.id, lane, req.arrived, now);
            obs.span(SpanKind::SlotService, req.id, lane, now, now + service);
        }
        if let Some(wake) = self.completions.schedule(now + service, req) {
            sim.schedule_at(wake, |sim, st: &mut TenantSim| st.drain_completions(sim));
        }
    }

    /// Sampled real-backend execution per admitted request.
    fn admit(&mut self, tenant: usize) {
        self.admitted += 1;
        if self.admitted % self.op_sample_every == 0 {
            self.backends[tenant].execute(&mut self.misc_rng);
        }
    }

    /// One completion wake: drains every due completion across the
    /// tenants, records their sojourn times, folds the whole batch into
    /// the shared pool, and starts service on the scheduler's next picks.
    fn drain_completions(&mut self, sim: &mut Simulation<TenantSim>) {
        let now = sim.now();
        let mut due = std::mem::take(&mut self.drain_buf);
        if let Some(wake) = self.completions.wake(now, &mut due) {
            sim.schedule_at(wake, |sim, st: &mut TenantSim| st.drain_completions(sim));
        }
        for &(at, req) in &due {
            debug_assert_eq!(at, now, "completions drain exactly at their tick");
            let t = &mut self.tenants[req.tenant as usize];
            t.latencies_us.push((now - req.arrived).as_micros_f64());
            t.completed += 1;
            t.conns[req.conn as usize].completed += 1;
            if let Some(obs) = self.obs.as_mut() {
                obs.count_completion(self.obs_lanes[req.tenant as usize], now);
            }
        }
        let mut dispatched = std::mem::take(&mut self.dispatch_buf);
        self.pool.finish_batch(
            due.iter().map(|&(_, req)| req.tenant as usize),
            &mut dispatched,
        );
        due.clear();
        self.drain_buf = due;
        for (_, _, next) in dispatched.drain(..) {
            self.start_service(sim, next);
        }
        self.dispatch_buf = dispatched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn tiny(backend: LoadBackend) -> TenancyBenchmark {
        let mut bench = TenancyBenchmark {
            victim_requests: 400,
            runs: 1,
            aggressor_fractions: vec![0.3, 1.2],
            ..TenancyBenchmark::quick(backend)
        };
        // The short window builds less backlog than the full-scale runs;
        // a shallower aggressor queue keeps overload observable.
        bench.aggressor.queue_capacity = 256;
        bench
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let a = bench
            .run_trial(&platform, &mut SimRng::seed_from(31))
            .unwrap();
        let b = bench
            .run_trial(&platform, &mut SimRng::seed_from(31))
            .unwrap();
        assert_eq!(a, b);
        let c = bench
            .run_trial(&platform, &mut SimRng::seed_from(32))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn per_tenant_accounting_balances_and_percentiles_are_ordered() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Native.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(33))
            .unwrap();
        assert_eq!(points.len(), bench.aggressor_fractions.len());
        for point in &points {
            for tenant in [&point.victim, &point.aggressor] {
                assert_eq!(tenant.issued, tenant.completed + tenant.dropped);
                assert!(tenant.completed > 0);
                assert!(tenant.p50_us <= tenant.p95_us && tenant.p95_us <= tenant.p99_us);
                assert!((0.0..=1.0).contains(&tenant.drop_rate));
                assert!((0.0..=1.0).contains(&tenant.slo_violation));
                assert!(
                    tenant.store_entries > 0,
                    "the sampled kv backend is pre-populated"
                );
                assert_eq!(tenant.store_lock_waits, 0, "kv backends take no row locks");
            }
        }
    }

    #[test]
    fn sql_tenants_surface_row_lock_contention_stats() {
        let bench = TenancyBenchmark {
            op_sample_every: 1,
            ..tiny(LoadBackend::Mysql)
        };
        let platform = PlatformId::Native.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(35))
            .unwrap();
        for point in &points {
            for tenant in [&point.victim, &point.aggressor] {
                assert!(tenant.store_entries > 0, "sysbench tables hold rows");
            }
        }
    }

    #[test]
    fn weighted_slots_protect_the_victim_against_an_overloading_aggressor() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Native.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(34))
            .unwrap();
        let overload = points.last().unwrap();
        assert!(
            overload.victim.p99_us < overload.victim_fifo_p99_us,
            "DRR victim p99 {} must undercut FIFO sharing {}",
            overload.victim.p99_us,
            overload.victim_fifo_p99_us
        );
        // The aggressor cannot push the protected victim into heavy
        // inflation: the isolation index stays far below the FIFO one.
        let fifo_inflation = overload.victim_fifo_p99_us / overload.victim_solo_p99_us;
        assert!(
            overload.isolation_index < fifo_inflation,
            "weighted inflation {} vs fifo inflation {fifo_inflation}",
            overload.isolation_index
        );
    }

    #[test]
    fn aggressor_overload_is_shed_at_its_own_bounded_queue() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Native.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(35))
            .unwrap();
        let light = points.first().unwrap();
        let overload = points.last().unwrap();
        assert_eq!(light.aggressor.dropped, 0, "no drops at 30% load");
        assert!(
            overload.aggressor.dropped > 0,
            "an overloading aggressor must hit its admission bound"
        );
        assert!(overload.aggressor.achieved_per_sec < overload.aggressor.offered_per_sec);
        // The victim keeps its service level: no victim drops under DRR.
        assert_eq!(overload.victim.dropped, 0);
    }

    #[test]
    fn isolation_index_is_anchored_at_the_solo_baseline() {
        let bench = tiny(LoadBackend::Mysql);
        let platform = PlatformId::Qemu.build();
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(36))
            .unwrap();
        for point in &points {
            assert!(point.victim_solo_p99_us > 0.0);
            assert!(
                point.isolation_index >= 0.99,
                "co-located p99 cannot beat the solo baseline: {}",
                point.isolation_index
            );
        }
        let (light, overload) = (points.first().unwrap(), points.last().unwrap());
        // The mean aggregates every victim wait, so the interference
        // growth shows cleanly even where the p99 estimate is noisy.
        assert!(
            overload.victim.mean_us > light.victim.mean_us,
            "victim mean sojourn must grow with aggressor load: {} -> {}",
            light.victim.mean_us,
            overload.victim.mean_us
        );
    }

    #[test]
    fn on_off_arrivals_are_burstier_than_poisson_at_the_same_rate() {
        let rate = 1_000.0;
        let n = 20_000;
        let stats = |process: ArrivalProcess| {
            let mut gen = ArrivalGen::new(process, rate, SimRng::seed_from(37));
            let gaps: Vec<f64> = (0..n).map(|_| gen.next_gap()).collect();
            let mean = gaps.iter().sum::<f64>() / n as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
            (mean, var.sqrt() / mean)
        };
        let (poisson_mean, poisson_cv) = stats(ArrivalProcess::Poisson);
        let (onoff_mean, onoff_cv) = stats(ArrivalProcess::OnOff {
            duty_cycle: 0.3,
            burst_arrivals: 64.0,
        });
        assert!(
            (poisson_mean - 1.0 / rate).abs() < 0.05 / rate,
            "poisson mean gap {poisson_mean}"
        );
        assert!(
            (onoff_mean - 1.0 / rate).abs() < 0.15 / rate,
            "on-off long-run rate must match the offered rate, mean gap {onoff_mean}"
        );
        assert!(
            onoff_cv > poisson_cv * 1.5,
            "on-off gaps must be burstier: cv {onoff_cv} vs poisson {poisson_cv}"
        );
    }

    #[test]
    fn on_off_sample_paths_scale_with_the_offered_rate() {
        let process = ArrivalProcess::OnOff {
            duty_cycle: 0.3,
            burst_arrivals: 16.0,
        };
        let mut slow = ArrivalGen::new(process, 100.0, SimRng::seed_from(38));
        let mut fast = ArrivalGen::new(process, 400.0, SimRng::seed_from(38));
        for _ in 0..200 {
            let (a, b) = (slow.next_gap(), fast.next_gap());
            assert!(
                (a / b - 4.0).abs() < 1e-6,
                "gap {a} must be exactly 4x gap {b}"
            );
        }
    }

    #[test]
    fn invalid_tenant_parameters_error_loudly() {
        let platform = PlatformId::Native.build();
        let mut bench = tiny(LoadBackend::Memcached);
        bench.aggressor.arrivals = ArrivalProcess::OnOff {
            duty_cycle: 1.5,
            burst_arrivals: 64.0,
        };
        assert!(bench
            .run_trial(&platform, &mut SimRng::seed_from(39))
            .is_err());
        let mut bench = tiny(LoadBackend::Memcached);
        bench.servers = 0;
        assert!(bench
            .run_trial(&platform, &mut SimRng::seed_from(40))
            .is_err());
        let bench = tiny(LoadBackend::Memcached);
        assert!(bench
            .run_colocated(
                &platform,
                &[],
                SlotPolicy::WeightedDrr,
                &mut SimRng::seed_from(41)
            )
            .is_err());
    }

    #[test]
    fn tracing_is_observation_only_with_one_lane_per_tenant() {
        use simcore::obs::ObsConfig;
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let tenants = [bench.victim.clone(), bench.aggressor.clone()];
        let plain = bench
            .run_colocated(
                &platform,
                &tenants,
                SlotPolicy::WeightedDrr,
                &mut SimRng::seed_from(43),
            )
            .unwrap();
        let recorder = Recorder::try_new(ObsConfig::new(9, 0.5)).unwrap();
        let (traced, recorder) = bench
            .run_colocated_traced(
                &platform,
                &tenants,
                SlotPolicy::WeightedDrr,
                &mut SimRng::seed_from(43),
                recorder,
            )
            .unwrap();
        assert_eq!(plain, traced, "the recorder must not perturb the run");
        assert!(recorder.spans_accepted() > 0);
        let timeline = recorder.timeline_json("tenant", 43);
        assert!(timeline.contains("\"lane\": \"victim\""));
        assert!(timeline.contains("\"lane\": \"aggressor\""));
    }

    #[test]
    fn run_colocated_supports_more_than_two_tenants() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let mut third = bench.aggressor.clone();
        third.name = "batch".to_string();
        third.offered_fraction = 0.2;
        let tenants = [bench.victim.clone(), bench.aggressor.clone(), third];
        let points = bench
            .run_colocated(
                &platform,
                &tenants,
                SlotPolicy::WeightedDrr,
                &mut SimRng::seed_from(42),
            )
            .unwrap();
        assert_eq!(points.len(), 3);
        for point in &points {
            assert_eq!(point.issued, point.completed + point.dropped);
        }
    }
}
