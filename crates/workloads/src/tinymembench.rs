//! Tinymembench: memory access latency and copy bandwidth (Figs. 6–7).

use memsim::bandwidth::CopyMethod;
use memsim::latency::RandomAccessModel;
use memsim::tlb::PageSize;
use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::SimRng;

/// One point of the latency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyPoint {
    /// Buffer size in bytes.
    pub buffer_bytes: u64,
    /// Statistics of the measured extra access latency in nanoseconds.
    pub latency_ns: RunningStats,
}

/// The tinymembench benchmark.
#[derive(Debug, Clone, Copy)]
pub struct TinymembenchBenchmark {
    /// Repetitions per buffer size.
    pub runs: usize,
    /// Page size used for the mappings.
    pub page_size: PageSize,
}

impl Default for TinymembenchBenchmark {
    fn default() -> Self {
        TinymembenchBenchmark {
            runs: 10,
            page_size: PageSize::Small4K,
        }
    }
}

impl TinymembenchBenchmark {
    /// Creates a benchmark with the given repetition count and 4 KiB pages.
    pub fn new(runs: usize) -> Self {
        TinymembenchBenchmark {
            runs: runs.max(1),
            page_size: PageSize::Small4K,
        }
    }

    /// Switches the benchmark to huge pages (the Section 3.2 ablation).
    pub fn with_huge_pages(mut self) -> Self {
        self.page_size = PageSize::Huge2M;
        self
    }

    /// Runs the random-access latency sweep over the paper's buffer sizes
    /// (2^16 through 2^26 bytes).
    ///
    /// Platforms that do not support huge pages fall back to 4 KiB pages,
    /// as Kata does in the paper.
    pub fn run_latency(&self, platform: &Platform, rng: &mut SimRng) -> Vec<LatencyPoint> {
        let page =
            if self.page_size == PageSize::Huge2M && !platform.memory().huge_pages_supported() {
                PageSize::Small4K
            } else {
                self.page_size
            };
        RandomAccessModel::paper_buffer_sizes()
            .into_iter()
            .map(|buffer_bytes| {
                let latency_ns: RunningStats = (0..self.runs)
                    .map(|_| {
                        platform
                            .memory()
                            .sample_access_latency(buffer_bytes, page, rng)
                            .as_nanos() as f64
                    })
                    .collect();
                LatencyPoint {
                    buffer_bytes,
                    latency_ns,
                }
            })
            .collect()
    }

    /// Runs the sequential copy bandwidth measurement; returns MiB/s
    /// statistics for the given instruction variant.
    pub fn run_bandwidth(
        &self,
        platform: &Platform,
        method: CopyMethod,
        rng: &mut SimRng,
    ) -> RunningStats {
        (0..self.runs)
            .map(|_| {
                platform
                    .memory()
                    .sample_copy_bandwidth(method, rng)
                    .mib_per_sec()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    #[test]
    fn latency_sweep_reproduces_figure_6_shape() {
        let bench = TinymembenchBenchmark::new(5);
        let mut rng = SimRng::seed_from(3);
        let native = bench.run_latency(&PlatformId::Native.build(), &mut rng.split("native"));
        let fc = bench.run_latency(&PlatformId::Firecracker.build(), &mut rng.split("fc"));
        assert_eq!(native.len(), 11);
        // Latency grows with buffer size.
        assert!(native.last().unwrap().latency_ns.mean() > native[0].latency_ns.mean());
        // Firecracker is the outlier at large buffers, with larger error bars.
        let last = native.len() - 1;
        assert!(fc[last].latency_ns.mean() > native[last].latency_ns.mean() * 1.2);
        assert!(fc[last].latency_ns.std_dev() > native[last].latency_ns.std_dev());
    }

    #[test]
    fn huge_pages_shrink_large_buffer_latency_except_on_kata() {
        let mut rng = SimRng::seed_from(4);
        let small = TinymembenchBenchmark::new(5);
        let huge = TinymembenchBenchmark::new(5).with_huge_pages();
        let native = PlatformId::Native.build();
        let s = small.run_latency(&native, &mut rng.split("s"));
        let h = huge.run_latency(&native, &mut rng.split("h"));
        assert!(h.last().unwrap().latency_ns.mean() < s.last().unwrap().latency_ns.mean() * 0.85);

        // Kata does not support huge pages, so both runs look the same.
        let kata = PlatformId::Kata.build();
        let ks = small.run_latency(&kata, &mut rng.split("ks"));
        let kh = huge.run_latency(&kata, &mut rng.split("kh"));
        let rel = (ks.last().unwrap().latency_ns.mean() - kh.last().unwrap().latency_ns.mean())
            .abs()
            / ks.last().unwrap().latency_ns.mean();
        assert!(rel < 0.1, "kata huge-page run deviates by {rel}");
    }

    #[test]
    fn sse2_copies_are_faster_than_regular_everywhere() {
        let bench = TinymembenchBenchmark::new(3);
        let mut rng = SimRng::seed_from(5);
        for id in [PlatformId::Native, PlatformId::Qemu, PlatformId::Kata] {
            let p = id.build();
            let regular = bench
                .run_bandwidth(&p, CopyMethod::Regular, &mut rng)
                .mean();
            let sse2 = bench.run_bandwidth(&p, CopyMethod::Sse2, &mut rng).mean();
            assert!(sse2 > regular, "{id:?}: sse2 {sse2} vs regular {regular}");
        }
    }
}
