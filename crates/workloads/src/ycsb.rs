//! YCSB workload A against the Memcached-like store (Fig. 16).
//!
//! Workload A is a 50/50 mix of reads and updates over a zipfian key
//! distribution. The driver executes the operations against the real
//! [`kvstore::Store`] and charges each operation the platform's network
//! round trip, syscall dispatch and memory-access costs; the reported
//! number is achieved operations per second.

use kvstore::{Store, StoreConfig};
use memsim::tlb::PageSize;
use oskern::syscall::SyscallClass;
use platforms::Platform;
use simcore::stats::RunningStats;
use simcore::{Nanos, SimRng};

/// The YCSB benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct YcsbBenchmark {
    /// Number of records loaded before the measurement phase.
    pub records: usize,
    /// Operations per measurement run.
    pub operations: usize,
    /// Number of measurement runs (the paper uses 5).
    pub runs: usize,
    /// Client concurrency (YCSB threads).
    pub client_threads: usize,
    /// Zipfian skew of the key popularity distribution.
    pub zipf_theta: f64,
    /// Value size in bytes.
    pub value_size: usize,
}

impl Default for YcsbBenchmark {
    fn default() -> Self {
        YcsbBenchmark {
            records: 100_000,
            operations: 50_000,
            runs: 5,
            client_threads: 32,
            zipf_theta: 0.99,
            value_size: 1_000,
        }
    }
}

/// Outcome of one platform's YCSB measurement.
#[derive(Debug, Clone)]
pub struct YcsbOutcome {
    /// Throughput statistics in operations per second.
    pub ops_per_sec: RunningStats,
    /// Observed read hit ratio in the store.
    pub hit_ratio: f64,
}

impl YcsbBenchmark {
    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick() -> Self {
        YcsbBenchmark {
            records: 2_000,
            operations: 4_000,
            runs: 2,
            ..YcsbBenchmark::default()
        }
    }

    /// Runs workload A on the given platform.
    pub fn run(&self, platform: &Platform, rng: &mut SimRng) -> YcsbOutcome {
        let mut ops_per_sec = RunningStats::new();
        let mut hit_ratio = 0.0;
        for _ in 0..self.runs {
            let (tput, hits) = self.run_once(platform, rng);
            ops_per_sec.record(tput);
            hit_ratio = hits;
        }
        YcsbOutcome {
            ops_per_sec,
            hit_ratio,
        }
    }

    /// Runs a single measurement trial and returns its achieved throughput
    /// in operations per second.
    ///
    /// This is the unit the parallel executor shards on: one trial per
    /// `(experiment, platform, trial)` cell, each with an independently
    /// derived random stream, so the merged statistics are identical
    /// regardless of how the trials are scheduled.
    pub fn run_trial(&self, platform: &Platform, rng: &mut SimRng) -> f64 {
        self.run_once(platform, rng).0
    }

    /// The server-side service time of one memcached operation on this
    /// platform: request + response syscalls, the server's memory accesses
    /// (the store's working set far exceeds the caches) and the server CPU
    /// work.
    ///
    /// This is the service-time model shared between the closed-loop YCSB
    /// path here and the open-loop [`crate::loadgen`] subsystem, so both
    /// charge identical per-operation platform costs.
    pub fn per_op_service_time(&self, platform: &Platform) -> Nanos {
        let syscall_cost = platform.syscalls().dispatch_cost(SyscallClass::NetReceive)
            + platform.syscalls().dispatch_cost(SyscallClass::NetSend);
        let working_set = (self.records * self.value_size) as u64;
        let mem_cost = platform
            .memory()
            .mean_access_latency(working_set.max(1 << 20), PageSize::Small4K)
            * 24;
        let server_cpu = Nanos::from_micros(4);
        syscall_cost + mem_cost + server_cpu
    }

    fn run_once(&self, platform: &Platform, rng: &mut SimRng) -> (f64, f64) {
        let store = Store::new(StoreConfig::default());
        // Load phase.
        for i in 0..self.records {
            store.set(key(i).as_bytes(), vec![b'x'; self.value_size]);
        }

        let rtt = platform.network().mean_rtt();

        // The client keeps `client_threads` requests outstanding, so the
        // round trip is pipelined; the server-side costs serialize per
        // shard but the 16 shards give plenty of parallelism. Throughput is
        // bounded by the slower of the two stages.
        let per_op_server = self.per_op_service_time(platform).as_secs_f64();
        let server_capacity = platform.cpu().parallel_efficiency(self.client_threads)
            * self.client_threads.min(16) as f64
            / per_op_server;
        let network_capacity = self.client_threads as f64 / rtt.as_secs_f64();
        let record_bytes = (self.value_size + 64) as f64;
        let wire_capacity = platform.network().mean_throughput().bytes_per_sec() / record_bytes;
        let mean_tput = server_capacity.min(network_capacity).min(wire_capacity);

        // Execute the operation mix against the real store to obtain the
        // hit ratio and to keep the data structure honest.
        let mut reads = 0u64;
        for _ in 0..self.operations {
            let record = rng.zipf(self.records, self.zipf_theta);
            if rng.chance(0.5) {
                let _ = store.get(key(record).as_bytes());
                reads += 1;
            } else {
                store.set(key(record).as_bytes(), vec![b'y'; self.value_size]);
            }
        }
        let stats = store.stats();
        let hit_ratio = if reads == 0 {
            1.0
        } else {
            stats.hits as f64 / stats.gets.max(1) as f64
        };
        let measured = rng.normal_pos(mean_tput, mean_tput * 0.04);
        (measured, hit_ratio)
    }
}

fn key(i: usize) -> String {
    format!("user{i:08}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    #[test]
    fn throughput_ordering_matches_figure_16() {
        let bench = YcsbBenchmark::quick();
        let mut rng = SimRng::seed_from(61);
        let tput =
            |id: PlatformId, rng: &mut SimRng| bench.run(&id.build(), rng).ops_per_sec.mean();
        let lxc = tput(PlatformId::Lxc, &mut rng);
        let docker = tput(PlatformId::Docker, &mut rng);
        let qemu = tput(PlatformId::Qemu, &mut rng);
        let fc = tput(PlatformId::Firecracker, &mut rng);
        let chv = tput(PlatformId::CloudHypervisor, &mut rng);
        let kata = tput(PlatformId::Kata, &mut rng);
        let gvisor = tput(PlatformId::GvisorPtrace, &mut rng);

        // Regular containers perform very well.
        assert!(lxc > qemu && docker > qemu);
        // The newer the hypervisor, the worse (QEMU > FC > CHV).
        assert!(qemu > fc && fc > chv, "qemu {qemu} fc {fc} chv {chv}");
        // Kata lands below the regular containers and QEMU (Finding 18).
        assert!(kata < docker && kata < qemu, "kata {kata}");
        // gVisor is poor because of its network stack (Finding 19).
        assert!(gvisor < chv, "gvisor {gvisor} vs cloud-hypervisor {chv}");
    }

    #[test]
    fn a_trial_matches_a_single_run_measurement() {
        let mut bench = YcsbBenchmark::quick();
        bench.runs = 1;
        let platform = PlatformId::Docker.build();
        let trial = bench.run_trial(&platform, &mut SimRng::seed_from(63));
        let full = bench.run(&platform, &mut SimRng::seed_from(63));
        assert_eq!(trial, full.ops_per_sec.mean());
    }

    #[test]
    fn hot_keys_hit_the_store() {
        let bench = YcsbBenchmark::quick();
        let mut rng = SimRng::seed_from(62);
        let outcome = bench.run(&PlatformId::Native.build(), &mut rng);
        assert!(outcome.hit_ratio > 0.95, "hit ratio {}", outcome.hit_ratio);
        assert!(outcome.ops_per_sec.mean() > 0.0);
    }
}
