//! Sharded-cluster study: a routing tier hashes Zipf-skewed keys over N
//! backend shards, each with its own derated slot pool and completion
//! timer on its own event-core lane, and the study prints what
//! utilization-constant scale-out buys and costs — the median improves
//! as shards multiply while the hot keys concentrate on one shard and
//! inflate its tail — plus what resharding during tenant churn recovers
//! versus leaving the hot set pinned.
//!
//! Run with: `cargo run --release --example cluster_study`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — worker thread count (default: available parallelism)

use isolation_bench::harness::cli::parse_count;
use isolation_bench::harness::grid;
use isolation_bench::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };

    // `cluster_m` keeps the failover experiments out of the plain study.
    let mut plan = RunPlan::new(cfg).with_shard("cluster_m");
    if let Some(workers) = parse_count(&args, "--workers") {
        plan = plan.with_workers(workers);
    }
    let executor = Executor::new(plan);
    println!(
        "Sharded-cluster study ({} mode, seed {}, {} workers)\n",
        if paper_scale { "paper" } else { "quick" },
        cfg.seed,
        executor.plan().effective_workers(),
    );

    let run: RunReport = executor.run();
    for figure in &run.figures {
        println!("{}", report::to_markdown(figure));
    }

    // Cluster summary: per platform, what scale-out does to the median
    // and to the hottest shard, how skew concentrates load, and what
    // resharding under churn recovers.
    for experiment in [ExperimentId::ClusterMemcached, ExperimentId::ClusterMysql] {
        let Some(fig) = run.figure(experiment) else {
            continue;
        };
        println!("### {} — scale-out and routing summary\n", fig.title);
        for platform in grid::platforms_of(fig, grid::CLUSTER_HOT_P99) {
            let at = |metric: &str, label: &str| {
                fig.series_named(&format!("{platform} {metric}"))
                    .and_then(|s| s.mean_of(label))
                    .unwrap_or(0.0)
            };
            let p50_s1 = at(grid::CLUSTER_P50, "s1").max(f64::MIN_POSITIVE);
            let hot_s1 = at(grid::CLUSTER_HOT_P99, "s1").max(f64::MIN_POSITIVE);
            let rebal = at(grid::CLUSTER_IMBALANCE, "s16 rebal").max(f64::MIN_POSITIVE);
            println!(
                "- {platform}: p50 s1 {:.0} us -> s256 {:.0} us ({:.2}x); hot-shard p99 \
                 s1 {:.0} us -> s256 {:.0} us ({:.1}x); imbalance z0.00 {:.2} -> z0.99 {:.2}; \
                 pinned/rebal imbalance {:.1}x, hot p99 {:.1}x",
                p50_s1,
                at(grid::CLUSTER_P50, "s256"),
                at(grid::CLUSTER_P50, "s256") / p50_s1,
                hot_s1,
                at(grid::CLUSTER_HOT_P99, "s256"),
                at(grid::CLUSTER_HOT_P99, "s256") / hot_s1,
                at(grid::CLUSTER_IMBALANCE, "s16 z0.00"),
                at(grid::CLUSTER_IMBALANCE, "s16 z0.99"),
                at(grid::CLUSTER_IMBALANCE, "s16 pinned") / rebal,
                at(grid::CLUSTER_HOT_P99, "s16 pinned")
                    / at(grid::CLUSTER_HOT_P99, "s16 rebal").max(f64::MIN_POSITIVE),
            );
        }
        println!();
    }

    println!("{}", report::timing_table(&run));
}
