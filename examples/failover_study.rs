//! Replicated-cluster failover study: the routing tier from the
//! sharded-cluster sweep grows R-way replication with quorum reads and
//! writes, scatter-gather fan-out across K partitions, and a
//! deterministic mid-window shard kill, and the study prints what each
//! costs — reading the full replica set inflates the median over a
//! single-replica read (even though spreading each key over its replica
//! set smooths the Zipf hot shard), scatter-gather pays the max of K
//! sub-queries in its tail, and a mid-window kill spikes the drop rate
//! until hand-offs re-route the dead shard's keys and recovery returns
//! drops to the pre-failure band.
//!
//! Run with: `cargo run --release --example failover_study`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — worker thread count (default: available parallelism)

use isolation_bench::harness::cli::parse_count;
use isolation_bench::harness::grid;
use isolation_bench::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };

    let mut plan = RunPlan::new(cfg).with_shard("cluster_failover");
    if let Some(workers) = parse_count(&args, "--workers") {
        plan = plan.with_workers(workers);
    }
    let executor = Executor::new(plan);
    println!(
        "Replicated-cluster failover study ({} mode, seed {}, {} workers)\n",
        if paper_scale { "paper" } else { "quick" },
        cfg.seed,
        executor.plan().effective_workers(),
    );

    let run: RunReport = executor.run();
    for figure in &run.figures {
        println!("{}", report::to_markdown(figure));
    }

    // Failover summary: per platform, what quorum width costs at the
    // median, how scatter-gather's tail grows with fan-out, and how the
    // drop rate moves through a kill-then-recover window.
    for experiment in [
        ExperimentId::ClusterFailoverMemcached,
        ExperimentId::ClusterFailoverMysql,
    ] {
        let Some(fig) = run.figure(experiment) else {
            continue;
        };
        println!("### {} — replication and failover summary\n", fig.title);
        for platform in grid::platforms_of(fig, grid::FAILOVER_SCATTER_P99) {
            let at = |metric: &str, label: &str| {
                fig.series_named(&format!("{platform} {metric}"))
                    .and_then(|s| s.mean_of(label))
                    .unwrap_or(0.0)
            };
            let r1 = at(grid::CLUSTER_P50, "r1").max(f64::MIN_POSITIVE);
            let k1 = at(grid::FAILOVER_SCATTER_P99, "r3 w1").max(f64::MIN_POSITIVE);
            println!(
                "- {platform}: p50 r1 {:.0} us -> r3 read-one {:.0} us -> r3 read-all {:.0} us \
                 ({:.2}x); scatter p99 k1 {:.0} us -> k4 {:.0} us -> k16 {:.0} us ({:.2}x); \
                 r2 kill at {:.0} us: drop {:.4} -> {:.4} in-window -> {:.4} after recovery \
                 ({:.0} hand-offs)",
                r1,
                at(grid::CLUSTER_P50, "r3 w3"),
                at(grid::CLUSTER_P50, "r3 w1"),
                at(grid::CLUSTER_P50, "r3 w1") / r1,
                k1,
                at(grid::FAILOVER_SCATTER_P99, "r3 k4"),
                at(grid::FAILOVER_SCATTER_P99, "r3 k16"),
                at(grid::FAILOVER_SCATTER_P99, "r3 k16") / k1,
                at(grid::FAILOVER_FAIL_AT, "r2 failrec"),
                at(grid::FAILOVER_PRE_DROP, "r2 failrec"),
                at(grid::FAILOVER_WINDOW_DROP, "r2 failrec"),
                at(grid::FAILOVER_POST_DROP, "r2 failrec"),
                at(grid::FAILOVER_HANDOFFS, "r2 failrec"),
            );
        }
        println!();
    }

    println!("{}", report::timing_table(&run));
}
