//! Regenerates every table and figure of the paper's evaluation section and
//! prints them as markdown, followed by the machine-checked findings.
//!
//! Run with: `cargo run --release --example full_evaluation`
//! (pass `--paper` for the full-scale configuration; default is quick).

use isolation_bench::prelude::*;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };
    println!(
        "Running the full evaluation ({} mode, seed {})\n",
        if paper_scale { "paper" } else { "quick" },
        cfg.seed
    );

    for figure in isolation_bench::harness::figures::run_all(&cfg) {
        println!("{}", report::to_markdown(&figure));
    }

    println!("## Findings check\n");
    let mut passed = 0;
    let checks = isolation_bench::harness::check_findings(&cfg);
    for check in &checks {
        let status = if check.passed { "PASS" } else { "FAIL" };
        if check.passed {
            passed += 1;
        }
        println!(
            "[{status}] {}: {} ({})",
            check.id, check.claim, check.detail
        );
    }
    println!("\n{passed}/{} findings reproduced", checks.len());
}
