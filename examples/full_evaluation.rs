//! Regenerates every table and figure of the paper's evaluation section
//! through the parallel experiment executor, prints them as markdown,
//! followed by the machine-checked findings and a per-experiment
//! wall-clock summary.
//!
//! Run with: `cargo run --release --example full_evaluation`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — worker thread count (default: available parallelism)
//! * `--shard FILTER` — only experiments whose slug contains FILTER
//! * `--trials N` — override every experiment's trial count

use isolation_bench::harness::cli::{flag_value, parse_count};
use isolation_bench::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };

    let mut plan = RunPlan::new(cfg);
    if let Some(workers) = parse_count(&args, "--workers") {
        plan = plan.with_workers(workers);
    }
    let shard = flag_value(&args, "--shard");
    if let Some(filter) = &shard {
        plan = plan.with_shard(filter);
    }
    let trials = parse_count(&args, "--trials");
    if let Some(trials) = trials {
        plan = plan.with_trials(trials);
    }

    let executor = Executor::new(plan);
    println!(
        "Running the full evaluation ({} mode, seed {}, {} workers{})\n",
        if paper_scale { "paper" } else { "quick" },
        cfg.seed,
        executor.plan().effective_workers(),
        shard
            .as_deref()
            .map(|f| format!(", shard \"{f}\""))
            .unwrap_or_default(),
    );

    let run: RunReport = executor.run();
    for figure in &run.figures {
        println!("{}", report::to_markdown(figure));
    }

    // The findings thresholds assume the canonical trial counts; skip the
    // check for sharded or trial-overridden runs rather than report
    // spurious failures against non-canonical data.
    if shard.is_none() && trials.is_none() {
        println!("## Findings check\n");
        let mut passed = 0;
        // Check against the figures the executor just computed — no
        // serial re-run of the experiments.
        let checks = isolation_bench::harness::check_findings_on(&run.figures);
        for check in &checks {
            let status = if check.passed { "PASS" } else { "FAIL" };
            if check.passed {
                passed += 1;
            }
            println!(
                "[{status}] {}: {} ({})",
                check.id, check.claim, check.detail
            );
        }
        println!("\n{passed}/{} findings reproduced\n", checks.len());
    }

    println!("{}", report::timing_table(&run));
}
