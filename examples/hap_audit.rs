//! Security audit: compute the extended Horizontal Attack Profile for every
//! platform and print both the classic count and the EPSS-weighted score,
//! together with the defense-in-depth layers the HAP cannot see
//! (reproduces Fig. 18 and Finding 28).
//!
//! Run with: `cargo run --release --example hap_audit`

use isolation_bench::prelude::*;

fn main() {
    let suite = HapSuite::default();
    let mut rows: Vec<_> = PlatformId::paper_set()
        .iter()
        .map(|id| {
            let platform = id.build();
            let profile = suite.profile(&platform);
            (
                platform.name().to_string(),
                profile.distinct_functions,
                profile.weighted_score,
                platform.isolation().defense_in_depth_layers(),
            )
        })
        .collect();
    rows.sort_by_key(|r| r.1);

    println!(
        "{:<18} {:>10} {:>16} {:>16}",
        "platform", "HAP", "weighted HAP", "defense layers"
    );
    for (name, distinct, weighted, layers) in &rows {
        println!("{name:<18} {distinct:>10} {weighted:>16.2} {layers:>16}");
    }
    println!(
        "\n{} exposes the narrowest host interface; {} the widest — yet the\n\
         platforms with the widest interface stack the most defense-in-depth\n\
         layers, which the HAP metric cannot capture (Finding 28).",
        rows.first().map(|r| r.0.as_str()).unwrap_or("-"),
        rows.last().map(|r| r.0.as_str()).unwrap_or("-"),
    );
}
