//! Open-loop load study: drives the simulated memcached and MySQL
//! backends with a Poisson arrival process at a sweep of offered loads and
//! prints each platform's throughput-vs-latency curve — the regime the
//! paper's closed-loop macro benchmarks (Figs. 16–17) cannot observe.
//!
//! Run with: `cargo run --release --example load_study`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — worker thread count (default: available parallelism)

use isolation_bench::harness::cli::parse_count;
use isolation_bench::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };

    let mut plan = RunPlan::new(cfg).with_shard("load_");
    if let Some(workers) = parse_count(&args, "--workers") {
        plan = plan.with_workers(workers);
    }
    let executor = Executor::new(plan);
    println!(
        "Open-loop load study ({} mode, seed {}, {} workers)\n",
        if paper_scale { "paper" } else { "quick" },
        cfg.seed,
        executor.plan().effective_workers(),
    );

    let run: RunReport = executor.run();
    for figure in &run.figures {
        println!("{}", report::to_markdown(figure));
    }

    // Tail-amplification summary: how much p99 inflates between the
    // lightest and heaviest offered load of each platform.
    for experiment in [ExperimentId::LoadMemcached, ExperimentId::LoadMysql] {
        let Some(fig) = run.figure(experiment) else {
            continue;
        };
        println!("### {} — p99 inflation, 20% -> 95% load\n", fig.title);
        for series in fig.series.iter().filter(|s| s.label.ends_with("p99 (us)")) {
            let (Some(first), Some(last)) = (series.points.first(), series.points.last()) else {
                continue;
            };
            println!(
                "- {}: {:.1} us -> {:.1} us ({:.1}x)",
                series.label.trim_end_matches(" p99 (us)"),
                first.mean,
                last.mean,
                last.mean / first.mean.max(f64::MIN_POSITIVE),
            );
        }
        println!();
    }

    // Hockey-stick view: the same curves re-based on achieved throughput
    // (x axis), exported through the standard CSV path so the knee of each
    // platform is plot-ready.
    for experiment in [ExperimentId::LoadMemcached, ExperimentId::LoadMysql] {
        let Some(fig) = run.figure(experiment) else {
            continue;
        };
        let stick = report::hockey_stick(fig);
        println!("### {}\n", stick.title);
        println!("{}", report::to_csv(&stick));
    }

    println!("{}", report::timing_table(&run));
}
