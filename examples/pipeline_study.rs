//! Middleware pipeline study: every request crosses a staged chain —
//! auth with a warmable cache and a reject short-circuit, then
//! transform/route/... stages with in/out-phase costs — before reaching
//! the backend, and the study prints how chain depth, cache health, and
//! the per-platform tax compound into end-to-end latency, including the
//! cache-miss storm the capacity plan never budgeted for.
//!
//! Run with: `cargo run --release --example pipeline_study`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — worker thread count (default: available parallelism)

use isolation_bench::harness::cli::parse_count;
use isolation_bench::harness::grid;
use isolation_bench::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };

    let mut plan = RunPlan::new(cfg).with_shard("pipeline");
    if let Some(workers) = parse_count(&args, "--workers") {
        plan = plan.with_workers(workers);
    }
    let executor = Executor::new(plan);
    println!(
        "Middleware pipeline study ({} mode, seed {}, {} workers)\n",
        if paper_scale { "paper" } else { "quick" },
        cfg.seed,
        executor.plan().effective_workers(),
    );

    let run: RunReport = executor.run();
    for figure in &run.figures {
        println!("{}", report::to_markdown(figure));
    }

    // Pipeline summary: per platform, what the chain costs as it deepens,
    // and what happens when the auth cache goes cold at the same depth.
    for experiment in [ExperimentId::PipelineMemcached, ExperimentId::PipelineMysql] {
        let Some(fig) = run.figure(experiment) else {
            continue;
        };
        println!("### {} — depth and cache-health summary\n", fig.title);
        for platform in grid::platforms_of(fig, grid::PIPELINE_STAGE_TAX) {
            let at = |metric: &str, label: &str| {
                fig.series_named(&format!("{platform} {metric}"))
                    .and_then(|s| s.mean_of(label))
                    .unwrap_or(0.0)
            };
            let p50_d1 = at(grid::PIPELINE_P50, "d1 h0.90").max(f64::MIN_POSITIVE);
            let warm_p99 = at(grid::PIPELINE_P99, "d4 h0.90").max(f64::MIN_POSITIVE);
            println!(
                "- {platform}: p50 d1 {:.0} us -> d8 {:.0} us ({:.2}x, stage tax {:.0} us); \
                 miss storm p99 {:.0} us ({:.1}x warm); short-circuit {:.1}%, cache hits {:.0}%",
                p50_d1,
                at(grid::PIPELINE_P50, "d8 h0.90"),
                at(grid::PIPELINE_P50, "d8 h0.90") / p50_d1,
                at(grid::PIPELINE_STAGE_TAX, "d8 h0.90"),
                at(grid::PIPELINE_P99, "d4 miss-storm"),
                at(grid::PIPELINE_P99, "d4 miss-storm") / warm_p99,
                at(grid::PIPELINE_SHORT_CIRCUIT, "d8 h0.90") * 100.0,
                at(grid::PIPELINE_CACHE_HIT, "d8 h0.90") * 100.0,
            );
        }
        println!();
    }

    println!("{}", report::timing_table(&run));
}
