//! Quickstart: build two platforms, compare their key characteristics, and
//! regenerate one paper figure.
//!
//! Run with: `cargo run --release --example quickstart`

use isolation_bench::prelude::*;

fn main() {
    // 1. Build platform models.
    let docker = PlatformId::Docker.build();
    let gvisor = PlatformId::GvisorPtrace.build();

    println!("== platform comparison ==");
    for p in [&docker, &gvisor] {
        println!(
            "{:<10} family={:?} net={:.1} Gbit/s rtt={} defense layers={}",
            p.name(),
            p.family(),
            p.network().mean_throughput().gbit_per_sec(),
            p.network().mean_rtt(),
            p.isolation().defense_in_depth_layers(),
        );
    }

    // 2. Regenerate the iperf3 figure (Fig. 11) in quick mode.
    let cfg = RunConfig::quick(2021);
    let fig = figures::run(ExperimentId::Fig11Iperf, &cfg);
    println!("\n{}", report::to_markdown(&fig));

    // 3. Compute the extended HAP for both platforms.
    let suite = HapSuite::quick();
    for p in [&docker, &gvisor] {
        let profile = suite.profile(p);
        println!(
            "HAP({}): {} distinct host kernel functions, weighted score {:.2}",
            p.name(),
            profile.distinct_functions,
            profile.weighted_score
        );
    }
}
