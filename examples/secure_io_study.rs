//! Secure-container I/O study: how much block-I/O performance do Kata and
//! gVisor give up, and how much does virtio-fs recover? Reproduces the
//! core of Figs. 9–10 plus the Finding 7 ablation.
//!
//! Run with: `cargo run --release --example secure_io_study`

use isolation_bench::prelude::*;
use workloads::FioBenchmark;

fn main() {
    let bench = FioBenchmark {
        runs: 5,
        guest_memory_bytes: 4 << 30,
        drop_host_cache: true,
    };
    let mut rng = SimRng::seed_from(9);
    let platforms = [
        PlatformId::Native,
        PlatformId::Docker,
        PlatformId::Qemu,
        PlatformId::CloudHypervisor,
        PlatformId::GvisorPtrace,
        PlatformId::Kata,
        PlatformId::KataVirtioFs,
    ];

    println!(
        "{:<16} {:>14} {:>14} {:>16}",
        "platform", "read (MiB/s)", "write (MiB/s)", "randread (us)"
    );
    for id in platforms {
        let platform = id.build();
        let mut prng = rng.split(platform.name());
        let throughput = bench.run_throughput(&platform, &mut prng);
        let latency = bench.run_randread_latency(&platform, &mut prng);
        let (r, w) = throughput
            .map(|t| (t.read_mib_s.mean(), t.write_mib_s.mean()))
            .unwrap_or((f64::NAN, f64::NAN));
        let l = latency.map(|s| s.mean()).unwrap_or(f64::NAN);
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>16.0}",
            platform.name(),
            r,
            w,
            l
        );
    }

    println!(
        "\nTakeaway: the 9p shared filesystem costs Kata roughly half of the\n\
         native throughput and a large latency penalty; switching to virtio-fs\n\
         recovers most of it (Findings 6-8 of the paper)."
    );
}
