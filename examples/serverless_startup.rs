//! Serverless cold-start study: which isolation platform can spawn and
//! despawn fastest? Reproduces the start-up experiments (Figs. 13–15) and
//! prints the median and p90 boot time of every candidate, including the
//! Docker-daemon vs direct-OCI difference.
//!
//! Run with: `cargo run --release --example serverless_startup`

use isolation_bench::prelude::*;
use platforms::subsystems::startup::StartupVariant;
use workloads::StartupBenchmark;

fn main() {
    let bench = StartupBenchmark::new(200);
    let mut rng = SimRng::seed_from(7);
    let candidates = [
        (
            PlatformId::Docker,
            StartupVariant::OciDirect,
            "runc (direct)",
        ),
        (PlatformId::Docker, StartupVariant::Default, "docker daemon"),
        (
            PlatformId::GvisorPtrace,
            StartupVariant::OciDirect,
            "gvisor (runsc)",
        ),
        (PlatformId::Kata, StartupVariant::OciDirect, "kata"),
        (PlatformId::Lxc, StartupVariant::Default, "lxc"),
        (
            PlatformId::Firecracker,
            StartupVariant::Default,
            "firecracker",
        ),
        (
            PlatformId::CloudHypervisor,
            StartupVariant::Default,
            "cloud-hypervisor",
        ),
        (PlatformId::Qemu, StartupVariant::Default, "qemu"),
        (
            PlatformId::OsvFirecracker,
            StartupVariant::Default,
            "osv on firecracker",
        ),
        (PlatformId::OsvQemu, StartupVariant::Default, "osv on qemu"),
    ];
    println!(
        "{:<22} {:>12} {:>12}",
        "platform", "median (ms)", "p90 (ms)"
    );
    let mut results: Vec<(String, f64, f64)> = candidates
        .iter()
        .map(|(id, variant, label)| {
            let cdf = bench.run_cdf(&id.build(), *variant, &mut rng.split(label));
            (label.to_string(), cdf.median(), cdf.percentile(90.0))
        })
        .collect();
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (label, median, p90) in &results {
        println!("{label:<22} {median:>12.1} {p90:>12.1}");
    }
    println!(
        "\nFastest cold start: {} — OSv unikernels and plain containers lead, \
         Kata and LXC trail (Findings 13–15).",
        results[0].0
    );
}
