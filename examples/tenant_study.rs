//! Multi-tenant co-location study: a latency-sensitive victim tenant
//! shares each platform's weighted service slots with a bursty aggressor
//! swept from light load into overload, and the study prints how well the
//! platform (plus the deficit-round-robin scheduler) isolates the victim —
//! the regime neither the paper's closed-loop macro benchmarks nor the
//! single-population load curves can observe.
//!
//! Run with: `cargo run --release --example tenant_study`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — worker thread count (default: available parallelism)

use isolation_bench::harness::cli::parse_count;
use isolation_bench::harness::grid;
use isolation_bench::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };

    let mut plan = RunPlan::new(cfg).with_shard("tenant_");
    if let Some(workers) = parse_count(&args, "--workers") {
        plan = plan.with_workers(workers);
    }
    let executor = Executor::new(plan);
    println!(
        "Multi-tenant isolation study ({} mode, seed {}, {} workers)\n",
        if paper_scale { "paper" } else { "quick" },
        cfg.seed,
        executor.plan().effective_workers(),
    );

    let run: RunReport = executor.run();
    for figure in &run.figures {
        println!("{}", report::to_markdown(figure));
    }

    // Isolation summary: per platform, how far the overloading aggressor
    // pushes the victim's p99 — under the weighted scheduler vs unweighted
    // FIFO sharing — relative to the victim running alone.
    for experiment in [
        ExperimentId::TenantIsolationMemcached,
        ExperimentId::TenantIsolationMysql,
    ] {
        let Some(fig) = run.figure(experiment) else {
            continue;
        };
        println!(
            "### {} — victim p99 inflation at the top aggressor load\n",
            fig.title
        );
        for platform in grid::platforms_of(fig, grid::TENANT_VICTIM_P99) {
            let last = |metric: &str| {
                fig.series_named(&format!("{platform} {metric}"))
                    .and_then(|s| s.points.last())
                    .map(|p| p.mean)
                    .unwrap_or(0.0)
            };
            let solo = last(grid::TENANT_VICTIM_SOLO_P99).max(f64::MIN_POSITIVE);
            println!(
                "- {platform}: solo {:.0} us -> weighted {:.0} us ({:.2}x), fifo {:.0} us ({:.1}x); aggressor sheds {:.0}% of its load",
                solo,
                last(grid::TENANT_VICTIM_P99),
                last(grid::TENANT_ISOLATION_INDEX),
                last(grid::TENANT_VICTIM_FIFO_P99),
                last(grid::TENANT_VICTIM_FIFO_P99) / solo,
                last(grid::TENANT_AGGRESSOR_DROP_RATE) * 100.0,
            );
        }
        println!();
    }

    println!("{}", report::timing_table(&run));
}
