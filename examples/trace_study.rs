//! Trace study: runs one traced sweep point of the middleware pipeline
//! and one of the sharded cluster, writes the Chrome-trace and timeline
//! artifacts, and prints what the deterministic observability layer
//! sees — span-kind census, busiest timeline lanes, and the sampling
//! contract (same seed, same spans, whatever the worker or core-lane
//! count).
//!
//! Run with: `cargo run --release --example trace_study`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--seed N` — root seed (default 2021)

use isolation_bench::harness::cli::parse_count;
use isolation_bench::harness::obs::{traced_run, TRACE_SAMPLE_RATE};

/// Counts occurrences of one span-kind label inside a Chrome trace.
fn count_label(chrome: &str, label: &str) -> usize {
    chrome.matches(&format!("\"name\": \"{label}\"")).count()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let seed = parse_count(&args, "--seed").map_or(2021, |n| n as u64);
    println!(
        "Trace study ({} mode, seed {seed}, sample rate {TRACE_SAMPLE_RATE})\n",
        if paper_scale { "paper" } else { "quick" },
    );

    for target in ["pipeline", "cluster"] {
        let trace = traced_run(target, !paper_scale, seed)
            .expect("the traced study configurations are valid");
        let chrome_path = format!("TRACE_{target}.json");
        let timeline_path = format!("BENCH_trace_{target}.json");
        std::fs::write(&chrome_path, &trace.chrome)
            .unwrap_or_else(|e| panic!("cannot write {chrome_path}: {e}"));
        std::fs::write(&timeline_path, &trace.timeline)
            .unwrap_or_else(|e| panic!("cannot write {timeline_path}: {e}"));

        println!("### {target}\n");
        println!(
            "- spans accepted: {} (ring retained the whole window: {})",
            trace.spans_accepted,
            trace.chrome.len() > 2,
        );
        println!("- span census:");
        for label in [
            "admission-wait",
            "slot-service",
            "stage-in",
            "stage-out",
            "cache-hit",
            "cache-miss",
            "short-circuit",
            "route",
            "hand-off",
        ] {
            let n = count_label(&trace.chrome, label);
            if n > 0 {
                println!("    {label:<15} {n}");
            }
        }
        println!(
            "- artifacts: {chrome_path} (chrome://tracing / Perfetto), {timeline_path} \
             (schema isolation-bench/obs/v1)\n"
        );
    }

    // The reproducibility contract, demonstrated end to end: the same
    // seed yields byte-identical artifacts on a second run.
    let a = traced_run("cluster", !paper_scale, seed).expect("valid");
    let b = traced_run("cluster", !paper_scale, seed).expect("valid");
    assert_eq!(a.chrome, b.chrome, "traced runs must be reproducible");
    println!("re-run with the same seed: artifacts byte-identical ✔");
}
