//! # isolation-bench
//!
//! A Rust reproduction of *"A Fresh Look at the Architecture and
//! Performance of Contemporary Isolation Platforms"* (Middleware '21):
//! architecturally faithful models of nine isolation platforms (native,
//! Docker, LXC, QEMU/KVM, Firecracker, Cloud Hypervisor, Kata containers,
//! gVisor and OSv), the full cross-platform benchmark suite, and the
//! extended Horizontal Attack Profile metric.
//!
//! This crate is a facade re-exporting the workspace members; see the
//! README for the architecture overview and `DESIGN.md`/`EXPERIMENTS.md`
//! for the per-figure reproduction index.
//!
//! ```
//! use isolation_bench::prelude::*;
//!
//! let cfg = RunConfig::quick(2021);
//! let fig = isolation_bench::harness::figures::run(ExperimentId::Fig11Iperf, &cfg);
//! let native = fig.series[0].mean_of("native").unwrap();
//! let gvisor = fig.series[0].mean_of("gvisor").unwrap();
//! assert!(native > gvisor);
//! ```

#![warn(missing_docs)]

pub use blocksim;
pub use hap;
pub use harness;
pub use kvstore;
pub use memsim;
pub use netsim;
pub use oskern;
pub use platforms;
pub use relstore;
pub use simcore;
pub use vmm;
pub use workloads;

/// Commonly used items for driving the benchmark harness.
pub mod prelude {
    pub use hap::HapSuite;
    pub use harness::{
        figures, report, Executor, ExperimentId, FigureData, RunConfig, RunPlan, RunReport,
    };
    pub use platforms::{Platform, PlatformFamily, PlatformId};
    pub use simcore::{Nanos, SimRng};
}
