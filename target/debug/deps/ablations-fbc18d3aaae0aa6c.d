/root/repo/target/debug/deps/ablations-fbc18d3aaae0aa6c.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-fbc18d3aaae0aa6c.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
