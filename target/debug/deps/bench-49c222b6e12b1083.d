/root/repo/target/debug/deps/bench-49c222b6e12b1083.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-49c222b6e12b1083.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
