/root/repo/target/debug/deps/bench-751f7ee2a20d2e5b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-751f7ee2a20d2e5b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
