/root/repo/target/debug/deps/bench-af0ef34a8fd120eb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-af0ef34a8fd120eb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
