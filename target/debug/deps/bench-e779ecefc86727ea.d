/root/repo/target/debug/deps/bench-e779ecefc86727ea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-e779ecefc86727ea.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-e779ecefc86727ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
