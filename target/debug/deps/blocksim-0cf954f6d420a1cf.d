/root/repo/target/debug/deps/blocksim-0cf954f6d420a1cf.d: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/debug/deps/blocksim-0cf954f6d420a1cf: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

crates/blocksim/src/lib.rs:
crates/blocksim/src/device.rs:
crates/blocksim/src/engine.rs:
crates/blocksim/src/layers.rs:
crates/blocksim/src/request.rs:
crates/blocksim/src/stack.rs:
