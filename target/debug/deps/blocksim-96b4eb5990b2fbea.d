/root/repo/target/debug/deps/blocksim-96b4eb5990b2fbea.d: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/debug/deps/libblocksim-96b4eb5990b2fbea.rlib: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/debug/deps/libblocksim-96b4eb5990b2fbea.rmeta: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

crates/blocksim/src/lib.rs:
crates/blocksim/src/device.rs:
crates/blocksim/src/engine.rs:
crates/blocksim/src/layers.rs:
crates/blocksim/src/request.rs:
crates/blocksim/src/stack.rs:
