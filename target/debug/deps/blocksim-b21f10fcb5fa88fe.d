/root/repo/target/debug/deps/blocksim-b21f10fcb5fa88fe.d: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs Cargo.toml

/root/repo/target/debug/deps/libblocksim-b21f10fcb5fa88fe.rmeta: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs Cargo.toml

crates/blocksim/src/lib.rs:
crates/blocksim/src/device.rs:
crates/blocksim/src/engine.rs:
crates/blocksim/src/layers.rs:
crates/blocksim/src/request.rs:
crates/blocksim/src/stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
