/root/repo/target/debug/deps/fig05_compute-8bed3bf981913d98.d: crates/bench/benches/fig05_compute.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_compute-8bed3bf981913d98.rmeta: crates/bench/benches/fig05_compute.rs Cargo.toml

crates/bench/benches/fig05_compute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
