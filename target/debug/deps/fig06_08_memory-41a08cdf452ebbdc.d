/root/repo/target/debug/deps/fig06_08_memory-41a08cdf452ebbdc.d: crates/bench/benches/fig06_08_memory.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_08_memory-41a08cdf452ebbdc.rmeta: crates/bench/benches/fig06_08_memory.rs Cargo.toml

crates/bench/benches/fig06_08_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
