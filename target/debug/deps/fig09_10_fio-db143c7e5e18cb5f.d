/root/repo/target/debug/deps/fig09_10_fio-db143c7e5e18cb5f.d: crates/bench/benches/fig09_10_fio.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_10_fio-db143c7e5e18cb5f.rmeta: crates/bench/benches/fig09_10_fio.rs Cargo.toml

crates/bench/benches/fig09_10_fio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
