/root/repo/target/debug/deps/fig11_12_network-1790fa82112bc316.d: crates/bench/benches/fig11_12_network.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_12_network-1790fa82112bc316.rmeta: crates/bench/benches/fig11_12_network.rs Cargo.toml

crates/bench/benches/fig11_12_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
