/root/repo/target/debug/deps/fig13_15_startup-b73bfb2f09abe5ad.d: crates/bench/benches/fig13_15_startup.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_15_startup-b73bfb2f09abe5ad.rmeta: crates/bench/benches/fig13_15_startup.rs Cargo.toml

crates/bench/benches/fig13_15_startup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
