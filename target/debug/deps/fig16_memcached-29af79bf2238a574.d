/root/repo/target/debug/deps/fig16_memcached-29af79bf2238a574.d: crates/bench/benches/fig16_memcached.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_memcached-29af79bf2238a574.rmeta: crates/bench/benches/fig16_memcached.rs Cargo.toml

crates/bench/benches/fig16_memcached.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
