/root/repo/target/debug/deps/fig17_mysql-55cc1ce4548d4c04.d: crates/bench/benches/fig17_mysql.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_mysql-55cc1ce4548d4c04.rmeta: crates/bench/benches/fig17_mysql.rs Cargo.toml

crates/bench/benches/fig17_mysql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
