/root/repo/target/debug/deps/fig18_hap-de5d221b0959eed9.d: crates/bench/benches/fig18_hap.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_hap-de5d221b0959eed9.rmeta: crates/bench/benches/fig18_hap.rs Cargo.toml

crates/bench/benches/fig18_hap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
