/root/repo/target/debug/deps/hap-ad43cbc5c2965fd4.d: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libhap-ad43cbc5c2965fd4.rmeta: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs Cargo.toml

crates/hap/src/lib.rs:
crates/hap/src/epss.rs:
crates/hap/src/score.rs:
crates/hap/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
