/root/repo/target/debug/deps/hap-b2ecca1db41e004e.d: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/debug/deps/libhap-b2ecca1db41e004e.rlib: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/debug/deps/libhap-b2ecca1db41e004e.rmeta: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

crates/hap/src/lib.rs:
crates/hap/src/epss.rs:
crates/hap/src/score.rs:
crates/hap/src/suite.rs:
