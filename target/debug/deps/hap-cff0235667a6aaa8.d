/root/repo/target/debug/deps/hap-cff0235667a6aaa8.d: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/debug/deps/hap-cff0235667a6aaa8: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

crates/hap/src/lib.rs:
crates/hap/src/epss.rs:
crates/hap/src/score.rs:
crates/hap/src/suite.rs:
