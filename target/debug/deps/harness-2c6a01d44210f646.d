/root/repo/target/debug/deps/harness-2c6a01d44210f646.d: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libharness-2c6a01d44210f646.rmeta: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/config.rs:
crates/harness/src/experiment.rs:
crates/harness/src/figures.rs:
crates/harness/src/findings.rs:
crates/harness/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
