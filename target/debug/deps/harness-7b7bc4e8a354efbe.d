/root/repo/target/debug/deps/harness-7b7bc4e8a354efbe.d: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/debug/deps/harness-7b7bc4e8a354efbe: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

crates/harness/src/lib.rs:
crates/harness/src/config.rs:
crates/harness/src/experiment.rs:
crates/harness/src/figures.rs:
crates/harness/src/findings.rs:
crates/harness/src/report.rs:
