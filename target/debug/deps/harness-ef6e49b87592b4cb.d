/root/repo/target/debug/deps/harness-ef6e49b87592b4cb.d: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/debug/deps/libharness-ef6e49b87592b4cb.rlib: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/debug/deps/libharness-ef6e49b87592b4cb.rmeta: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

crates/harness/src/lib.rs:
crates/harness/src/config.rs:
crates/harness/src/experiment.rs:
crates/harness/src/figures.rs:
crates/harness/src/findings.rs:
crates/harness/src/report.rs:
