/root/repo/target/debug/deps/isolation_bench-21e66778ceec79ca.d: src/lib.rs

/root/repo/target/debug/deps/libisolation_bench-21e66778ceec79ca.rlib: src/lib.rs

/root/repo/target/debug/deps/libisolation_bench-21e66778ceec79ca.rmeta: src/lib.rs

src/lib.rs:
