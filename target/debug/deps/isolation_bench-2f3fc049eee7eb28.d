/root/repo/target/debug/deps/isolation_bench-2f3fc049eee7eb28.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libisolation_bench-2f3fc049eee7eb28.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
