/root/repo/target/debug/deps/isolation_bench-4c569c5b65f5a48a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libisolation_bench-4c569c5b65f5a48a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
