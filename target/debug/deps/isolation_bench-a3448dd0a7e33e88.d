/root/repo/target/debug/deps/isolation_bench-a3448dd0a7e33e88.d: src/lib.rs

/root/repo/target/debug/deps/isolation_bench-a3448dd0a7e33e88: src/lib.rs

src/lib.rs:
