/root/repo/target/debug/deps/kvstore-3448899c2f954a31.d: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/debug/deps/libkvstore-3448899c2f954a31.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/debug/deps/libkvstore-3448899c2f954a31.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/protocol.rs:
crates/kvstore/src/shard.rs:
crates/kvstore/src/store.rs:
