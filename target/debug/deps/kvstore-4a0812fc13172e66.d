/root/repo/target/debug/deps/kvstore-4a0812fc13172e66.d: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/debug/deps/kvstore-4a0812fc13172e66: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/protocol.rs:
crates/kvstore/src/shard.rs:
crates/kvstore/src/store.rs:
