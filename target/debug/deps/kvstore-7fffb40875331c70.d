/root/repo/target/debug/deps/kvstore-7fffb40875331c70.d: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libkvstore-7fffb40875331c70.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs Cargo.toml

crates/kvstore/src/lib.rs:
crates/kvstore/src/protocol.rs:
crates/kvstore/src/shard.rs:
crates/kvstore/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
