/root/repo/target/debug/deps/memsim-0abcf23a56247c67.d: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/debug/deps/libmemsim-0abcf23a56247c67.rlib: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/debug/deps/libmemsim-0abcf23a56247c67.rmeta: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/bandwidth.rs:
crates/memsim/src/config.rs:
crates/memsim/src/features.rs:
crates/memsim/src/latency.rs:
crates/memsim/src/paging.rs:
crates/memsim/src/tlb.rs:
