/root/repo/target/debug/deps/memsim-0f1c41793da0fa5a.d: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libmemsim-0f1c41793da0fa5a.rmeta: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs Cargo.toml

crates/memsim/src/lib.rs:
crates/memsim/src/bandwidth.rs:
crates/memsim/src/config.rs:
crates/memsim/src/features.rs:
crates/memsim/src/latency.rs:
crates/memsim/src/paging.rs:
crates/memsim/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
