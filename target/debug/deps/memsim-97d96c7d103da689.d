/root/repo/target/debug/deps/memsim-97d96c7d103da689.d: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/debug/deps/memsim-97d96c7d103da689: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/bandwidth.rs:
crates/memsim/src/config.rs:
crates/memsim/src/features.rs:
crates/memsim/src/latency.rs:
crates/memsim/src/paging.rs:
crates/memsim/src/tlb.rs:
