/root/repo/target/debug/deps/netsim-08b06eb46f151446.d: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/debug/deps/libnetsim-08b06eb46f151446.rlib: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/debug/deps/libnetsim-08b06eb46f151446.rmeta: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

crates/netsim/src/lib.rs:
crates/netsim/src/component.rs:
crates/netsim/src/path.rs:
