/root/repo/target/debug/deps/netsim-487c13dcec954e88.d: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/debug/deps/netsim-487c13dcec954e88: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

crates/netsim/src/lib.rs:
crates/netsim/src/component.rs:
crates/netsim/src/path.rs:
