/root/repo/target/debug/deps/netsim-ef0aedeea843b4e9.d: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-ef0aedeea843b4e9.rmeta: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/component.rs:
crates/netsim/src/path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
