/root/repo/target/debug/deps/oskern-4802b5421fa30e07.d: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs Cargo.toml

/root/repo/target/debug/deps/liboskern-4802b5421fa30e07.rmeta: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs Cargo.toml

crates/oskern/src/lib.rs:
crates/oskern/src/cgroups.rs:
crates/oskern/src/ftrace.rs:
crates/oskern/src/host.rs:
crates/oskern/src/init.rs:
crates/oskern/src/kernel_fn.rs:
crates/oskern/src/namespaces.rs:
crates/oskern/src/pagecache.rs:
crates/oskern/src/sched.rs:
crates/oskern/src/syscall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
