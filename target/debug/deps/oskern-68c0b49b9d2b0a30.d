/root/repo/target/debug/deps/oskern-68c0b49b9d2b0a30.d: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

/root/repo/target/debug/deps/liboskern-68c0b49b9d2b0a30.rlib: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

/root/repo/target/debug/deps/liboskern-68c0b49b9d2b0a30.rmeta: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

crates/oskern/src/lib.rs:
crates/oskern/src/cgroups.rs:
crates/oskern/src/ftrace.rs:
crates/oskern/src/host.rs:
crates/oskern/src/init.rs:
crates/oskern/src/kernel_fn.rs:
crates/oskern/src/namespaces.rs:
crates/oskern/src/pagecache.rs:
crates/oskern/src/sched.rs:
crates/oskern/src/syscall.rs:
