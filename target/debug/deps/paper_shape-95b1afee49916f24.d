/root/repo/target/debug/deps/paper_shape-95b1afee49916f24.d: tests/paper_shape.rs

/root/repo/target/debug/deps/paper_shape-95b1afee49916f24: tests/paper_shape.rs

tests/paper_shape.rs:
