/root/repo/target/debug/deps/platforms-e1bbc8681720e540.d: crates/platforms/src/lib.rs crates/platforms/src/builders/mod.rs crates/platforms/src/builders/containers.rs crates/platforms/src/builders/hypervisors.rs crates/platforms/src/builders/native.rs crates/platforms/src/builders/secure.rs crates/platforms/src/builders/unikernels.rs crates/platforms/src/isolation.rs crates/platforms/src/platform.rs crates/platforms/src/registry.rs crates/platforms/src/subsystems/mod.rs crates/platforms/src/subsystems/cpu.rs crates/platforms/src/subsystems/memory.rs crates/platforms/src/subsystems/network.rs crates/platforms/src/subsystems/startup.rs crates/platforms/src/subsystems/storage.rs crates/platforms/src/syscall_path.rs Cargo.toml

/root/repo/target/debug/deps/libplatforms-e1bbc8681720e540.rmeta: crates/platforms/src/lib.rs crates/platforms/src/builders/mod.rs crates/platforms/src/builders/containers.rs crates/platforms/src/builders/hypervisors.rs crates/platforms/src/builders/native.rs crates/platforms/src/builders/secure.rs crates/platforms/src/builders/unikernels.rs crates/platforms/src/isolation.rs crates/platforms/src/platform.rs crates/platforms/src/registry.rs crates/platforms/src/subsystems/mod.rs crates/platforms/src/subsystems/cpu.rs crates/platforms/src/subsystems/memory.rs crates/platforms/src/subsystems/network.rs crates/platforms/src/subsystems/startup.rs crates/platforms/src/subsystems/storage.rs crates/platforms/src/syscall_path.rs Cargo.toml

crates/platforms/src/lib.rs:
crates/platforms/src/builders/mod.rs:
crates/platforms/src/builders/containers.rs:
crates/platforms/src/builders/hypervisors.rs:
crates/platforms/src/builders/native.rs:
crates/platforms/src/builders/secure.rs:
crates/platforms/src/builders/unikernels.rs:
crates/platforms/src/isolation.rs:
crates/platforms/src/platform.rs:
crates/platforms/src/registry.rs:
crates/platforms/src/subsystems/mod.rs:
crates/platforms/src/subsystems/cpu.rs:
crates/platforms/src/subsystems/memory.rs:
crates/platforms/src/subsystems/network.rs:
crates/platforms/src/subsystems/startup.rs:
crates/platforms/src/subsystems/storage.rs:
crates/platforms/src/syscall_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
