/root/repo/target/debug/deps/properties-09bd4e9610c6a577.d: tests/properties.rs

/root/repo/target/debug/deps/properties-09bd4e9610c6a577: tests/properties.rs

tests/properties.rs:
