/root/repo/target/debug/deps/properties-bd5a50c3db301ced.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bd5a50c3db301ced.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
