/root/repo/target/debug/deps/relstore-0dc1b5457cb8bf52.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs Cargo.toml

/root/repo/target/debug/deps/librelstore-0dc1b5457cb8bf52.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs Cargo.toml

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/error.rs:
crates/relstore/src/lock.rs:
crates/relstore/src/table.rs:
crates/relstore/src/txn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
