/root/repo/target/debug/deps/relstore-8f91312fb2c50e98.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/debug/deps/relstore-8f91312fb2c50e98: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/error.rs:
crates/relstore/src/lock.rs:
crates/relstore/src/table.rs:
crates/relstore/src/txn.rs:
