/root/repo/target/debug/deps/relstore-93008b43ac2caec9.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/debug/deps/librelstore-93008b43ac2caec9.rlib: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/debug/deps/librelstore-93008b43ac2caec9.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/error.rs:
crates/relstore/src/lock.rs:
crates/relstore/src/table.rs:
crates/relstore/src/txn.rs:
