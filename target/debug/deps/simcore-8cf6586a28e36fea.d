/root/repo/target/debug/deps/simcore-8cf6586a28e36fea.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/simcore-8cf6586a28e36fea: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/error.rs:
crates/simcore/src/events.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
