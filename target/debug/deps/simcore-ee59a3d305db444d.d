/root/repo/target/debug/deps/simcore-ee59a3d305db444d.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsimcore-ee59a3d305db444d.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/error.rs:
crates/simcore/src/events.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
