/root/repo/target/debug/deps/vmm-060339561cf13ab2.d: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

/root/repo/target/debug/deps/libvmm-060339561cf13ab2.rlib: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

/root/repo/target/debug/deps/libvmm-060339561cf13ab2.rmeta: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

crates/vmm/src/lib.rs:
crates/vmm/src/boot.rs:
crates/vmm/src/devices.rs:
crates/vmm/src/kvm.rs:
crates/vmm/src/machine.rs:
crates/vmm/src/vcpu.rs:
crates/vmm/src/vsock.rs:
