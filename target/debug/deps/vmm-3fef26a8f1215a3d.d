/root/repo/target/debug/deps/vmm-3fef26a8f1215a3d.d: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

/root/repo/target/debug/deps/vmm-3fef26a8f1215a3d: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

crates/vmm/src/lib.rs:
crates/vmm/src/boot.rs:
crates/vmm/src/devices.rs:
crates/vmm/src/kvm.rs:
crates/vmm/src/machine.rs:
crates/vmm/src/vcpu.rs:
crates/vmm/src/vsock.rs:
