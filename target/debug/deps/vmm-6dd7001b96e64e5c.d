/root/repo/target/debug/deps/vmm-6dd7001b96e64e5c.d: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs Cargo.toml

/root/repo/target/debug/deps/libvmm-6dd7001b96e64e5c.rmeta: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs Cargo.toml

crates/vmm/src/lib.rs:
crates/vmm/src/boot.rs:
crates/vmm/src/devices.rs:
crates/vmm/src/kvm.rs:
crates/vmm/src/machine.rs:
crates/vmm/src/vcpu.rs:
crates/vmm/src/vsock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
