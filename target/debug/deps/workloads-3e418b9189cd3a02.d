/root/repo/target/debug/deps/workloads-3e418b9189cd3a02.d: crates/workloads/src/lib.rs crates/workloads/src/ffmpeg.rs crates/workloads/src/fio.rs crates/workloads/src/iperf.rs crates/workloads/src/netperf.rs crates/workloads/src/startup.rs crates/workloads/src/stream.rs crates/workloads/src/sysbench_cpu.rs crates/workloads/src/sysbench_oltp.rs crates/workloads/src/tinymembench.rs crates/workloads/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-3e418b9189cd3a02.rmeta: crates/workloads/src/lib.rs crates/workloads/src/ffmpeg.rs crates/workloads/src/fio.rs crates/workloads/src/iperf.rs crates/workloads/src/netperf.rs crates/workloads/src/startup.rs crates/workloads/src/stream.rs crates/workloads/src/sysbench_cpu.rs crates/workloads/src/sysbench_oltp.rs crates/workloads/src/tinymembench.rs crates/workloads/src/ycsb.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/ffmpeg.rs:
crates/workloads/src/fio.rs:
crates/workloads/src/iperf.rs:
crates/workloads/src/netperf.rs:
crates/workloads/src/startup.rs:
crates/workloads/src/stream.rs:
crates/workloads/src/sysbench_cpu.rs:
crates/workloads/src/sysbench_oltp.rs:
crates/workloads/src/tinymembench.rs:
crates/workloads/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
