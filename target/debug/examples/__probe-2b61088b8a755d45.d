/root/repo/target/debug/examples/__probe-2b61088b8a755d45.d: examples/__probe.rs

/root/repo/target/debug/examples/__probe-2b61088b8a755d45: examples/__probe.rs

examples/__probe.rs:
