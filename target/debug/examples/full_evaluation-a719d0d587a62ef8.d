/root/repo/target/debug/examples/full_evaluation-a719d0d587a62ef8.d: examples/full_evaluation.rs Cargo.toml

/root/repo/target/debug/examples/libfull_evaluation-a719d0d587a62ef8.rmeta: examples/full_evaluation.rs Cargo.toml

examples/full_evaluation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
