/root/repo/target/debug/examples/full_evaluation-b2f002ba866fa1f4.d: examples/full_evaluation.rs

/root/repo/target/debug/examples/full_evaluation-b2f002ba866fa1f4: examples/full_evaluation.rs

examples/full_evaluation.rs:
