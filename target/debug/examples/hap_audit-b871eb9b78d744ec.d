/root/repo/target/debug/examples/hap_audit-b871eb9b78d744ec.d: examples/hap_audit.rs Cargo.toml

/root/repo/target/debug/examples/libhap_audit-b871eb9b78d744ec.rmeta: examples/hap_audit.rs Cargo.toml

examples/hap_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
