/root/repo/target/debug/examples/hap_audit-c9c0334d5b455d5c.d: examples/hap_audit.rs

/root/repo/target/debug/examples/hap_audit-c9c0334d5b455d5c: examples/hap_audit.rs

examples/hap_audit.rs:
