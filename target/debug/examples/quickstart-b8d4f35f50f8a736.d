/root/repo/target/debug/examples/quickstart-b8d4f35f50f8a736.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b8d4f35f50f8a736: examples/quickstart.rs

examples/quickstart.rs:
