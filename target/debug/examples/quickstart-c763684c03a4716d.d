/root/repo/target/debug/examples/quickstart-c763684c03a4716d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c763684c03a4716d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
