/root/repo/target/debug/examples/secure_io_study-c650a4496657af60.d: examples/secure_io_study.rs

/root/repo/target/debug/examples/secure_io_study-c650a4496657af60: examples/secure_io_study.rs

examples/secure_io_study.rs:
