/root/repo/target/debug/examples/secure_io_study-fcb762c91ab479fd.d: examples/secure_io_study.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_io_study-fcb762c91ab479fd.rmeta: examples/secure_io_study.rs Cargo.toml

examples/secure_io_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
