/root/repo/target/debug/examples/serverless_startup-291eab1a08edf459.d: examples/serverless_startup.rs Cargo.toml

/root/repo/target/debug/examples/libserverless_startup-291eab1a08edf459.rmeta: examples/serverless_startup.rs Cargo.toml

examples/serverless_startup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
