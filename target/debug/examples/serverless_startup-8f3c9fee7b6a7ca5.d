/root/repo/target/debug/examples/serverless_startup-8f3c9fee7b6a7ca5.d: examples/serverless_startup.rs

/root/repo/target/debug/examples/serverless_startup-8f3c9fee7b6a7ca5: examples/serverless_startup.rs

examples/serverless_startup.rs:
