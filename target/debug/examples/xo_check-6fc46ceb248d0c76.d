/root/repo/target/debug/examples/xo_check-6fc46ceb248d0c76.d: examples/xo_check.rs

/root/repo/target/debug/examples/xo_check-6fc46ceb248d0c76: examples/xo_check.rs

examples/xo_check.rs:
