/root/repo/target/release/deps/ablations-468ee2a4d747c3ec.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-468ee2a4d747c3ec: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
