/root/repo/target/release/deps/bench-94693a8465e09ca8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-94693a8465e09ca8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
