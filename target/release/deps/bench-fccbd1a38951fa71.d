/root/repo/target/release/deps/bench-fccbd1a38951fa71.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-fccbd1a38951fa71.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-fccbd1a38951fa71.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
