/root/repo/target/release/deps/blocksim-5094d91997450660.d: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/release/deps/libblocksim-5094d91997450660.rlib: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/release/deps/libblocksim-5094d91997450660.rmeta: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

crates/blocksim/src/lib.rs:
crates/blocksim/src/device.rs:
crates/blocksim/src/engine.rs:
crates/blocksim/src/layers.rs:
crates/blocksim/src/request.rs:
crates/blocksim/src/stack.rs:
