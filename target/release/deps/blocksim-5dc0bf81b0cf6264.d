/root/repo/target/release/deps/blocksim-5dc0bf81b0cf6264.d: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/release/deps/libblocksim-5dc0bf81b0cf6264.rlib: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/release/deps/libblocksim-5dc0bf81b0cf6264.rmeta: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

crates/blocksim/src/lib.rs:
crates/blocksim/src/device.rs:
crates/blocksim/src/engine.rs:
crates/blocksim/src/layers.rs:
crates/blocksim/src/request.rs:
crates/blocksim/src/stack.rs:
