/root/repo/target/release/deps/blocksim-e1c97abb5b3f71c7.d: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

/root/repo/target/release/deps/blocksim-e1c97abb5b3f71c7: crates/blocksim/src/lib.rs crates/blocksim/src/device.rs crates/blocksim/src/engine.rs crates/blocksim/src/layers.rs crates/blocksim/src/request.rs crates/blocksim/src/stack.rs

crates/blocksim/src/lib.rs:
crates/blocksim/src/device.rs:
crates/blocksim/src/engine.rs:
crates/blocksim/src/layers.rs:
crates/blocksim/src/request.rs:
crates/blocksim/src/stack.rs:
