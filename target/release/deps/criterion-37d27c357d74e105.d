/root/repo/target/release/deps/criterion-37d27c357d74e105.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-37d27c357d74e105.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-37d27c357d74e105.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
