/root/repo/target/release/deps/criterion-a71cbf124a3712aa.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-a71cbf124a3712aa: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
