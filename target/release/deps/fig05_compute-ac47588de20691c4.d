/root/repo/target/release/deps/fig05_compute-ac47588de20691c4.d: crates/bench/benches/fig05_compute.rs

/root/repo/target/release/deps/fig05_compute-ac47588de20691c4: crates/bench/benches/fig05_compute.rs

crates/bench/benches/fig05_compute.rs:
