/root/repo/target/release/deps/fig06_08_memory-cf212a1faa110412.d: crates/bench/benches/fig06_08_memory.rs

/root/repo/target/release/deps/fig06_08_memory-cf212a1faa110412: crates/bench/benches/fig06_08_memory.rs

crates/bench/benches/fig06_08_memory.rs:
