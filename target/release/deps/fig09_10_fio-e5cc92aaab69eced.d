/root/repo/target/release/deps/fig09_10_fio-e5cc92aaab69eced.d: crates/bench/benches/fig09_10_fio.rs

/root/repo/target/release/deps/fig09_10_fio-e5cc92aaab69eced: crates/bench/benches/fig09_10_fio.rs

crates/bench/benches/fig09_10_fio.rs:
