/root/repo/target/release/deps/fig11_12_network-168c66ef5d8e213b.d: crates/bench/benches/fig11_12_network.rs

/root/repo/target/release/deps/fig11_12_network-168c66ef5d8e213b: crates/bench/benches/fig11_12_network.rs

crates/bench/benches/fig11_12_network.rs:
