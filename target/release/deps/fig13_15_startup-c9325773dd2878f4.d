/root/repo/target/release/deps/fig13_15_startup-c9325773dd2878f4.d: crates/bench/benches/fig13_15_startup.rs

/root/repo/target/release/deps/fig13_15_startup-c9325773dd2878f4: crates/bench/benches/fig13_15_startup.rs

crates/bench/benches/fig13_15_startup.rs:
