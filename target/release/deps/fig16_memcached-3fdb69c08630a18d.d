/root/repo/target/release/deps/fig16_memcached-3fdb69c08630a18d.d: crates/bench/benches/fig16_memcached.rs

/root/repo/target/release/deps/fig16_memcached-3fdb69c08630a18d: crates/bench/benches/fig16_memcached.rs

crates/bench/benches/fig16_memcached.rs:
