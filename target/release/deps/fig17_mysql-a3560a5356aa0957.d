/root/repo/target/release/deps/fig17_mysql-a3560a5356aa0957.d: crates/bench/benches/fig17_mysql.rs

/root/repo/target/release/deps/fig17_mysql-a3560a5356aa0957: crates/bench/benches/fig17_mysql.rs

crates/bench/benches/fig17_mysql.rs:
