/root/repo/target/release/deps/fig18_hap-74d307050eb0ff89.d: crates/bench/benches/fig18_hap.rs

/root/repo/target/release/deps/fig18_hap-74d307050eb0ff89: crates/bench/benches/fig18_hap.rs

crates/bench/benches/fig18_hap.rs:
