/root/repo/target/release/deps/hap-054ae0e559d148fc.d: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/release/deps/hap-054ae0e559d148fc: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

crates/hap/src/lib.rs:
crates/hap/src/epss.rs:
crates/hap/src/score.rs:
crates/hap/src/suite.rs:
