/root/repo/target/release/deps/hap-1992dc8b6573eaba.d: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/release/deps/libhap-1992dc8b6573eaba.rlib: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/release/deps/libhap-1992dc8b6573eaba.rmeta: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

crates/hap/src/lib.rs:
crates/hap/src/epss.rs:
crates/hap/src/score.rs:
crates/hap/src/suite.rs:
