/root/repo/target/release/deps/hap-313c99782a369342.d: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/release/deps/libhap-313c99782a369342.rlib: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

/root/repo/target/release/deps/libhap-313c99782a369342.rmeta: crates/hap/src/lib.rs crates/hap/src/epss.rs crates/hap/src/score.rs crates/hap/src/suite.rs

crates/hap/src/lib.rs:
crates/hap/src/epss.rs:
crates/hap/src/score.rs:
crates/hap/src/suite.rs:
