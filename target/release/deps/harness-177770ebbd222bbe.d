/root/repo/target/release/deps/harness-177770ebbd222bbe.d: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/release/deps/harness-177770ebbd222bbe: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

crates/harness/src/lib.rs:
crates/harness/src/config.rs:
crates/harness/src/experiment.rs:
crates/harness/src/figures.rs:
crates/harness/src/findings.rs:
crates/harness/src/report.rs:
