/root/repo/target/release/deps/harness-9d7154ee8211d2ce.d: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/release/deps/libharness-9d7154ee8211d2ce.rlib: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/release/deps/libharness-9d7154ee8211d2ce.rmeta: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

crates/harness/src/lib.rs:
crates/harness/src/config.rs:
crates/harness/src/experiment.rs:
crates/harness/src/figures.rs:
crates/harness/src/findings.rs:
crates/harness/src/report.rs:
