/root/repo/target/release/deps/harness-c3dd8ff509129089.d: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/release/deps/libharness-c3dd8ff509129089.rlib: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

/root/repo/target/release/deps/libharness-c3dd8ff509129089.rmeta: crates/harness/src/lib.rs crates/harness/src/config.rs crates/harness/src/experiment.rs crates/harness/src/figures.rs crates/harness/src/findings.rs crates/harness/src/report.rs

crates/harness/src/lib.rs:
crates/harness/src/config.rs:
crates/harness/src/experiment.rs:
crates/harness/src/figures.rs:
crates/harness/src/findings.rs:
crates/harness/src/report.rs:
