/root/repo/target/release/deps/isolation_bench-3cad7a21c1736f34.d: src/lib.rs

/root/repo/target/release/deps/libisolation_bench-3cad7a21c1736f34.rlib: src/lib.rs

/root/repo/target/release/deps/libisolation_bench-3cad7a21c1736f34.rmeta: src/lib.rs

src/lib.rs:
