/root/repo/target/release/deps/isolation_bench-5d4da1e60ef43d38.d: src/lib.rs

/root/repo/target/release/deps/isolation_bench-5d4da1e60ef43d38: src/lib.rs

src/lib.rs:
