/root/repo/target/release/deps/kvstore-349a25db536e94bc.d: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/release/deps/kvstore-349a25db536e94bc: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/protocol.rs:
crates/kvstore/src/shard.rs:
crates/kvstore/src/store.rs:
