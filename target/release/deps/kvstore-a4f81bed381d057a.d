/root/repo/target/release/deps/kvstore-a4f81bed381d057a.d: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/release/deps/libkvstore-a4f81bed381d057a.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/release/deps/libkvstore-a4f81bed381d057a.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/protocol.rs:
crates/kvstore/src/shard.rs:
crates/kvstore/src/store.rs:
