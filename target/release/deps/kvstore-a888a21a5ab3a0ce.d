/root/repo/target/release/deps/kvstore-a888a21a5ab3a0ce.d: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/release/deps/libkvstore-a888a21a5ab3a0ce.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

/root/repo/target/release/deps/libkvstore-a888a21a5ab3a0ce.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/protocol.rs crates/kvstore/src/shard.rs crates/kvstore/src/store.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/protocol.rs:
crates/kvstore/src/shard.rs:
crates/kvstore/src/store.rs:
