/root/repo/target/release/deps/memsim-68847acc768eb48d.d: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/memsim-68847acc768eb48d: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/bandwidth.rs:
crates/memsim/src/config.rs:
crates/memsim/src/features.rs:
crates/memsim/src/latency.rs:
crates/memsim/src/paging.rs:
crates/memsim/src/tlb.rs:
