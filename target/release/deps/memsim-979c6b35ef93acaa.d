/root/repo/target/release/deps/memsim-979c6b35ef93acaa.d: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/libmemsim-979c6b35ef93acaa.rlib: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/libmemsim-979c6b35ef93acaa.rmeta: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/bandwidth.rs:
crates/memsim/src/config.rs:
crates/memsim/src/features.rs:
crates/memsim/src/latency.rs:
crates/memsim/src/paging.rs:
crates/memsim/src/tlb.rs:
