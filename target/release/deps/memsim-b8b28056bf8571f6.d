/root/repo/target/release/deps/memsim-b8b28056bf8571f6.d: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/libmemsim-b8b28056bf8571f6.rlib: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

/root/repo/target/release/deps/libmemsim-b8b28056bf8571f6.rmeta: crates/memsim/src/lib.rs crates/memsim/src/bandwidth.rs crates/memsim/src/config.rs crates/memsim/src/features.rs crates/memsim/src/latency.rs crates/memsim/src/paging.rs crates/memsim/src/tlb.rs

crates/memsim/src/lib.rs:
crates/memsim/src/bandwidth.rs:
crates/memsim/src/config.rs:
crates/memsim/src/features.rs:
crates/memsim/src/latency.rs:
crates/memsim/src/paging.rs:
crates/memsim/src/tlb.rs:
