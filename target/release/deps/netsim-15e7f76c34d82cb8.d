/root/repo/target/release/deps/netsim-15e7f76c34d82cb8.d: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/release/deps/libnetsim-15e7f76c34d82cb8.rlib: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/release/deps/libnetsim-15e7f76c34d82cb8.rmeta: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

crates/netsim/src/lib.rs:
crates/netsim/src/component.rs:
crates/netsim/src/path.rs:
