/root/repo/target/release/deps/netsim-7f2bc889798d96bd.d: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/release/deps/libnetsim-7f2bc889798d96bd.rlib: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/release/deps/libnetsim-7f2bc889798d96bd.rmeta: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

crates/netsim/src/lib.rs:
crates/netsim/src/component.rs:
crates/netsim/src/path.rs:
