/root/repo/target/release/deps/netsim-f69d3b1aa2bb8a25.d: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

/root/repo/target/release/deps/netsim-f69d3b1aa2bb8a25: crates/netsim/src/lib.rs crates/netsim/src/component.rs crates/netsim/src/path.rs

crates/netsim/src/lib.rs:
crates/netsim/src/component.rs:
crates/netsim/src/path.rs:
