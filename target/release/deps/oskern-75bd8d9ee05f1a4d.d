/root/repo/target/release/deps/oskern-75bd8d9ee05f1a4d.d: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

/root/repo/target/release/deps/oskern-75bd8d9ee05f1a4d: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

crates/oskern/src/lib.rs:
crates/oskern/src/cgroups.rs:
crates/oskern/src/ftrace.rs:
crates/oskern/src/host.rs:
crates/oskern/src/init.rs:
crates/oskern/src/kernel_fn.rs:
crates/oskern/src/namespaces.rs:
crates/oskern/src/pagecache.rs:
crates/oskern/src/sched.rs:
crates/oskern/src/syscall.rs:
