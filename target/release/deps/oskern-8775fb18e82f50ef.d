/root/repo/target/release/deps/oskern-8775fb18e82f50ef.d: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

/root/repo/target/release/deps/liboskern-8775fb18e82f50ef.rlib: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

/root/repo/target/release/deps/liboskern-8775fb18e82f50ef.rmeta: crates/oskern/src/lib.rs crates/oskern/src/cgroups.rs crates/oskern/src/ftrace.rs crates/oskern/src/host.rs crates/oskern/src/init.rs crates/oskern/src/kernel_fn.rs crates/oskern/src/namespaces.rs crates/oskern/src/pagecache.rs crates/oskern/src/sched.rs crates/oskern/src/syscall.rs

crates/oskern/src/lib.rs:
crates/oskern/src/cgroups.rs:
crates/oskern/src/ftrace.rs:
crates/oskern/src/host.rs:
crates/oskern/src/init.rs:
crates/oskern/src/kernel_fn.rs:
crates/oskern/src/namespaces.rs:
crates/oskern/src/pagecache.rs:
crates/oskern/src/sched.rs:
crates/oskern/src/syscall.rs:
