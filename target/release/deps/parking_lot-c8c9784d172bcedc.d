/root/repo/target/release/deps/parking_lot-c8c9784d172bcedc.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-c8c9784d172bcedc: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
