/root/repo/target/release/deps/parking_lot-d1b4989dfc6020e3.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d1b4989dfc6020e3.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d1b4989dfc6020e3.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
