/root/repo/target/release/deps/parking_lot-e78dee6c4bee47d8.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e78dee6c4bee47d8.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e78dee6c4bee47d8.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
