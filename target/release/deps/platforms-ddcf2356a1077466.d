/root/repo/target/release/deps/platforms-ddcf2356a1077466.d: crates/platforms/src/lib.rs crates/platforms/src/builders/mod.rs crates/platforms/src/builders/containers.rs crates/platforms/src/builders/hypervisors.rs crates/platforms/src/builders/native.rs crates/platforms/src/builders/secure.rs crates/platforms/src/builders/unikernels.rs crates/platforms/src/isolation.rs crates/platforms/src/platform.rs crates/platforms/src/registry.rs crates/platforms/src/subsystems/mod.rs crates/platforms/src/subsystems/cpu.rs crates/platforms/src/subsystems/memory.rs crates/platforms/src/subsystems/network.rs crates/platforms/src/subsystems/startup.rs crates/platforms/src/subsystems/storage.rs crates/platforms/src/syscall_path.rs

/root/repo/target/release/deps/libplatforms-ddcf2356a1077466.rlib: crates/platforms/src/lib.rs crates/platforms/src/builders/mod.rs crates/platforms/src/builders/containers.rs crates/platforms/src/builders/hypervisors.rs crates/platforms/src/builders/native.rs crates/platforms/src/builders/secure.rs crates/platforms/src/builders/unikernels.rs crates/platforms/src/isolation.rs crates/platforms/src/platform.rs crates/platforms/src/registry.rs crates/platforms/src/subsystems/mod.rs crates/platforms/src/subsystems/cpu.rs crates/platforms/src/subsystems/memory.rs crates/platforms/src/subsystems/network.rs crates/platforms/src/subsystems/startup.rs crates/platforms/src/subsystems/storage.rs crates/platforms/src/syscall_path.rs

/root/repo/target/release/deps/libplatforms-ddcf2356a1077466.rmeta: crates/platforms/src/lib.rs crates/platforms/src/builders/mod.rs crates/platforms/src/builders/containers.rs crates/platforms/src/builders/hypervisors.rs crates/platforms/src/builders/native.rs crates/platforms/src/builders/secure.rs crates/platforms/src/builders/unikernels.rs crates/platforms/src/isolation.rs crates/platforms/src/platform.rs crates/platforms/src/registry.rs crates/platforms/src/subsystems/mod.rs crates/platforms/src/subsystems/cpu.rs crates/platforms/src/subsystems/memory.rs crates/platforms/src/subsystems/network.rs crates/platforms/src/subsystems/startup.rs crates/platforms/src/subsystems/storage.rs crates/platforms/src/syscall_path.rs

crates/platforms/src/lib.rs:
crates/platforms/src/builders/mod.rs:
crates/platforms/src/builders/containers.rs:
crates/platforms/src/builders/hypervisors.rs:
crates/platforms/src/builders/native.rs:
crates/platforms/src/builders/secure.rs:
crates/platforms/src/builders/unikernels.rs:
crates/platforms/src/isolation.rs:
crates/platforms/src/platform.rs:
crates/platforms/src/registry.rs:
crates/platforms/src/subsystems/mod.rs:
crates/platforms/src/subsystems/cpu.rs:
crates/platforms/src/subsystems/memory.rs:
crates/platforms/src/subsystems/network.rs:
crates/platforms/src/subsystems/startup.rs:
crates/platforms/src/subsystems/storage.rs:
crates/platforms/src/syscall_path.rs:
