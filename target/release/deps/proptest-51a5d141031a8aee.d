/root/repo/target/release/deps/proptest-51a5d141031a8aee.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-51a5d141031a8aee: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
