/root/repo/target/release/deps/proptest-8571ab8aeebf0c41.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-8571ab8aeebf0c41.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-8571ab8aeebf0c41.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
