/root/repo/target/release/deps/relstore-0190ecca3b1fb9b6.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/release/deps/relstore-0190ecca3b1fb9b6: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/error.rs:
crates/relstore/src/lock.rs:
crates/relstore/src/table.rs:
crates/relstore/src/txn.rs:
