/root/repo/target/release/deps/relstore-0961aa7df7f2b1ba.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/release/deps/librelstore-0961aa7df7f2b1ba.rlib: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/release/deps/librelstore-0961aa7df7f2b1ba.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/error.rs:
crates/relstore/src/lock.rs:
crates/relstore/src/table.rs:
crates/relstore/src/txn.rs:
