/root/repo/target/release/deps/relstore-59bf98eb26cab226.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/release/deps/librelstore-59bf98eb26cab226.rlib: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

/root/repo/target/release/deps/librelstore-59bf98eb26cab226.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/error.rs crates/relstore/src/lock.rs crates/relstore/src/table.rs crates/relstore/src/txn.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/error.rs:
crates/relstore/src/lock.rs:
crates/relstore/src/table.rs:
crates/relstore/src/txn.rs:
