/root/repo/target/release/deps/serde-4cadf6a2cfa78499.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-4cadf6a2cfa78499: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
