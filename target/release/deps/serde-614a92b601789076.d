/root/repo/target/release/deps/serde-614a92b601789076.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-614a92b601789076.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-614a92b601789076.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
