/root/repo/target/release/deps/serde_derive-ca1cdb7174082f78.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-ca1cdb7174082f78.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
