/root/repo/target/release/deps/serde_derive-f088fff0aa7fa8be.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-f088fff0aa7fa8be: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
