/root/repo/target/release/deps/simcore-1772f2d4bf760860.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-1772f2d4bf760860.rlib: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-1772f2d4bf760860.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/error.rs:
crates/simcore/src/events.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
