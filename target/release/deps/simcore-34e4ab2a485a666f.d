/root/repo/target/release/deps/simcore-34e4ab2a485a666f.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/simcore-34e4ab2a485a666f: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/error.rs crates/simcore/src/events.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/error.rs:
crates/simcore/src/events.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
