/root/repo/target/release/deps/vmm-591cecf151ac3377.d: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

/root/repo/target/release/deps/libvmm-591cecf151ac3377.rlib: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

/root/repo/target/release/deps/libvmm-591cecf151ac3377.rmeta: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

crates/vmm/src/lib.rs:
crates/vmm/src/boot.rs:
crates/vmm/src/devices.rs:
crates/vmm/src/kvm.rs:
crates/vmm/src/machine.rs:
crates/vmm/src/vcpu.rs:
crates/vmm/src/vsock.rs:
