/root/repo/target/release/deps/vmm-fa5abbc66b0cd18c.d: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

/root/repo/target/release/deps/vmm-fa5abbc66b0cd18c: crates/vmm/src/lib.rs crates/vmm/src/boot.rs crates/vmm/src/devices.rs crates/vmm/src/kvm.rs crates/vmm/src/machine.rs crates/vmm/src/vcpu.rs crates/vmm/src/vsock.rs

crates/vmm/src/lib.rs:
crates/vmm/src/boot.rs:
crates/vmm/src/devices.rs:
crates/vmm/src/kvm.rs:
crates/vmm/src/machine.rs:
crates/vmm/src/vcpu.rs:
crates/vmm/src/vsock.rs:
