/root/repo/target/release/deps/workloads-457d699ae75ed886.d: crates/workloads/src/lib.rs crates/workloads/src/ffmpeg.rs crates/workloads/src/fio.rs crates/workloads/src/iperf.rs crates/workloads/src/netperf.rs crates/workloads/src/startup.rs crates/workloads/src/stream.rs crates/workloads/src/sysbench_cpu.rs crates/workloads/src/sysbench_oltp.rs crates/workloads/src/tinymembench.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libworkloads-457d699ae75ed886.rlib: crates/workloads/src/lib.rs crates/workloads/src/ffmpeg.rs crates/workloads/src/fio.rs crates/workloads/src/iperf.rs crates/workloads/src/netperf.rs crates/workloads/src/startup.rs crates/workloads/src/stream.rs crates/workloads/src/sysbench_cpu.rs crates/workloads/src/sysbench_oltp.rs crates/workloads/src/tinymembench.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libworkloads-457d699ae75ed886.rmeta: crates/workloads/src/lib.rs crates/workloads/src/ffmpeg.rs crates/workloads/src/fio.rs crates/workloads/src/iperf.rs crates/workloads/src/netperf.rs crates/workloads/src/startup.rs crates/workloads/src/stream.rs crates/workloads/src/sysbench_cpu.rs crates/workloads/src/sysbench_oltp.rs crates/workloads/src/tinymembench.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/ffmpeg.rs:
crates/workloads/src/fio.rs:
crates/workloads/src/iperf.rs:
crates/workloads/src/netperf.rs:
crates/workloads/src/startup.rs:
crates/workloads/src/stream.rs:
crates/workloads/src/sysbench_cpu.rs:
crates/workloads/src/sysbench_oltp.rs:
crates/workloads/src/tinymembench.rs:
crates/workloads/src/ycsb.rs:
