/root/repo/target/release/examples/full_evaluation-383f7eaeafef3134.d: examples/full_evaluation.rs

/root/repo/target/release/examples/full_evaluation-383f7eaeafef3134: examples/full_evaluation.rs

examples/full_evaluation.rs:
