/root/repo/target/release/examples/hap_audit-9516e5eceb065e0e.d: examples/hap_audit.rs

/root/repo/target/release/examples/hap_audit-9516e5eceb065e0e: examples/hap_audit.rs

examples/hap_audit.rs:
