/root/repo/target/release/examples/quickstart-39ff6de91eb8ba55.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-39ff6de91eb8ba55: examples/quickstart.rs

examples/quickstart.rs:
