/root/repo/target/release/examples/secure_io_study-64a425deaf54f016.d: examples/secure_io_study.rs

/root/repo/target/release/examples/secure_io_study-64a425deaf54f016: examples/secure_io_study.rs

examples/secure_io_study.rs:
