/root/repo/target/release/examples/serverless_startup-e61c64fc7eca1cad.d: examples/serverless_startup.rs

/root/repo/target/release/examples/serverless_startup-e61c64fc7eca1cad: examples/serverless_startup.rs

examples/serverless_startup.rs:
