//! Acceptance tests of the sharded-cluster subsystem: the merged
//! figures' shape across the shard-count × skew × routing sweep,
//! bit-identical results across executor worker counts, and the
//! monotone response of the hot shard's load share to Zipf skew.

use std::sync::OnceLock;

use isolation_bench::harness::grid;
use isolation_bench::harness::Series;
use isolation_bench::prelude::*;
use isolation_bench::workloads::{ClusterBenchmark, ClusterSetting, LoadBackend};

fn cfg() -> RunConfig {
    RunConfig::quick(2021)
}

const EXPERIMENTS: [ExperimentId; 2] = [ExperimentId::ClusterMemcached, ExperimentId::ClusterMysql];

/// Labels of the utilization-constant scale-out sweep, in ascending
/// shard-count order, plus the two routing-policy points.
const SCALE_LABELS: [&str; 5] = ["s1", "s4", "s16", "s64", "s256"];
const POLICY_LABELS: [&str; 2] = ["s16 pinned", "s16 rebal"];

/// The serial reference figures, computed once: they are a pure function
/// of the fixed seed, and every test in this file reads them.
fn cluster_figures() -> &'static Vec<FigureData> {
    static FIGURES: OnceLock<Vec<FigureData>> = OnceLock::new();
    FIGURES.get_or_init(|| {
        EXPERIMENTS
            .iter()
            .map(|e| figures::run(*e, &cfg()))
            .collect()
    })
}

fn platforms_of(fig: &FigureData) -> Vec<String> {
    grid::platforms_of(fig, grid::CLUSTER_HOT_P99)
}

fn series<'f>(fig: &'f FigureData, platform: &str, metric: &str) -> &'f Series {
    fig.series_named(&format!("{platform} {metric}"))
        .unwrap_or_else(|| panic!("{:?} lacks {platform} {metric}", fig.experiment))
}

#[test]
fn cluster_figures_are_bit_identical_for_1_2_and_8_workers() {
    let serial = cluster_figures();
    let serial_csv: Vec<String> = serial.iter().map(report::to_csv).collect();
    for workers in [1, 2, 8] {
        let run = Executor::new(
            RunPlan::new(cfg())
                .with_shard("cluster_m")
                .with_workers(workers),
        )
        .run();
        assert_eq!(&run.figures, serial, "workers={workers}");
        let csv: Vec<String> = run.figures.iter().map(report::to_csv).collect();
        assert_eq!(
            csv, serial_csv,
            "workers={workers} must render identical bytes"
        );
    }
}

#[test]
fn sweeps_cover_every_platform_metric_and_routing_point() {
    for fig in cluster_figures() {
        let platforms = platforms_of(fig);
        assert!(
            platforms.len() >= 3,
            "{:?} covers only {platforms:?}",
            fig.experiment
        );
        assert_eq!(
            fig.series.len(),
            platforms.len() * grid::CLUSTER_METRICS.len()
        );
        for platform in &platforms {
            for metric in grid::CLUSTER_METRICS {
                let s = series(fig, platform, metric);
                assert!(
                    s.points.len() >= 8,
                    "{:?}/{platform} {metric} sweeps only {} points",
                    fig.experiment,
                    s.points.len()
                );
                for label in SCALE_LABELS.iter().chain(&POLICY_LABELS) {
                    assert!(
                        s.points.iter().any(|p| p.x == *label),
                        "{:?}/{platform} {metric} lacks the {label} point",
                        fig.experiment
                    );
                }
                for p in &s.points {
                    assert!(p.mean.is_finite());
                }
            }
        }
    }
}

#[test]
fn scale_out_trades_median_latency_for_hot_shard_tail() {
    // The utilization-constant sweep: at s256 the median improves on the
    // single shard (shorter per-shard queues), but the hot keys all land
    // on one shard, so the hottest shard's p99 grows and the steady-phase
    // imbalance is far above 1. p50 must never exceed p99 anywhere.
    for fig in cluster_figures() {
        for platform in platforms_of(fig) {
            let p50 = series(fig, &platform, grid::CLUSTER_P50);
            let hot = series(fig, &platform, grid::CLUSTER_HOT_P99);
            let imb = series(fig, &platform, grid::CLUSTER_IMBALANCE);
            let at = |s: &Series, label: &str| {
                s.mean_of(label)
                    .unwrap_or_else(|| panic!("{platform} lacks {label}"))
            };
            assert!(
                at(p50, "s256") < at(p50, "s1"),
                "{:?}/{platform}: scale-out must improve the median",
                fig.experiment
            );
            assert!(
                at(hot, "s256") > at(hot, "s1"),
                "{:?}/{platform}: the hot shard's tail must grow with shard count",
                fig.experiment
            );
            assert!(
                at(imb, "s256") > 4.0 && at(imb, "s1") < 1.0 + 1e-9,
                "{:?}/{platform}: imbalance must concentrate as shards multiply",
                fig.experiment
            );
            let p99 = series(fig, &platform, grid::CLUSTER_P99);
            for point in &p50.points {
                let ceiling = p99.mean_of(&point.x).unwrap();
                assert!(
                    point.mean <= ceiling,
                    "{:?}/{platform}: p50 {} exceeds p99 {} at {}",
                    fig.experiment,
                    point.mean,
                    ceiling,
                    point.x
                );
            }
        }
    }
}

#[test]
fn rebalancing_beats_pinned_routing_on_imbalance_and_tail() {
    for fig in cluster_figures() {
        for platform in platforms_of(fig) {
            let imb = series(fig, &platform, grid::CLUSTER_IMBALANCE);
            let hot = series(fig, &platform, grid::CLUSTER_HOT_P99);
            let pinned = imb.mean_of("s16 pinned").unwrap();
            let rebal = imb.mean_of("s16 rebal").unwrap();
            assert!(
                rebal < pinned * 0.75,
                "{:?}/{platform}: resharding must relieve the pinned imbalance \
                 (pinned {pinned:.2}, rebal {rebal:.2})",
                fig.experiment
            );
            assert!(
                hot.mean_of("s16 rebal").unwrap() < hot.mean_of("s16 pinned").unwrap(),
                "{:?}/{platform}: resharding must relieve the hot shard's tail",
                fig.experiment
            );
        }
    }
}

#[test]
fn hot_shard_load_share_is_monotone_in_zipf_skew() {
    // Direct sweep over the skew parameter at a fixed shard count: the
    // share of steady-phase arrivals the hottest shard absorbs grows
    // with the Zipf exponent (small tolerance for sampling noise), and
    // strong skew concentrates visibly more than a uniform draw.
    let platform = PlatformId::Native.build();
    let thetas = [0.0, 0.5, 0.9, 0.99];
    let bench = ClusterBenchmark {
        requests_per_point: 1_500,
        runs: 1,
        sweep: thetas
            .iter()
            .map(|&theta| ClusterSetting::hashed(16, theta))
            .collect(),
        ..ClusterBenchmark::quick(LoadBackend::Memcached)
    };
    let points = bench
        .run_trial(&platform, &mut SimRng::seed_from(2021))
        .unwrap();
    assert_eq!(points.len(), thetas.len());
    let shares: Vec<f64> = points.iter().map(|p| p.hot_share).collect();
    let mut last = 0.0f64;
    for (theta, share) in thetas.iter().zip(&shares) {
        assert!(
            (0.0..=1.0).contains(share),
            "share {share} at theta {theta} is not a fraction"
        );
        assert!(
            *share >= last - 0.02,
            "hot-shard share regresses at theta {theta}: {share} after {last} ({shares:?})"
        );
        last = last.max(*share);
    }
    assert!(
        shares[thetas.len() - 1] > shares[0] * 1.5,
        "strong skew must visibly concentrate load: {shares:?}"
    );
}
