//! Acceptance tests of the replicated-cluster failover experiments at
//! the executor level: the merged figures must be bit-identical (and
//! render to identical CSV bytes) for any worker count, and the sweep
//! must cover every platform × failover metric at every quorum,
//! scatter and kill setting.

use std::sync::OnceLock;

use isolation_bench::harness::grid;
use isolation_bench::harness::Series;
use isolation_bench::prelude::*;

fn cfg() -> RunConfig {
    RunConfig::quick(2021)
}

const EXPERIMENTS: [ExperimentId; 2] = [
    ExperimentId::ClusterFailoverMemcached,
    ExperimentId::ClusterFailoverMysql,
];

/// Every point of the failover sweep: the plain-routing anchor, the
/// quorum grid, the scatter fan-outs and the three kill settings.
const SETTING_LABELS: [&str; 10] = [
    "r1",
    "r2 w1",
    "r2 w2",
    "r3 w1",
    "r3 w3",
    "r3 k4",
    "r3 k16",
    "r2 fail",
    "r2 failrec",
    "r3 failrec",
];

/// The serial reference figures, computed once: they are a pure function
/// of the fixed seed, and every test in this file reads them.
fn failover_figures() -> &'static Vec<FigureData> {
    static FIGURES: OnceLock<Vec<FigureData>> = OnceLock::new();
    FIGURES.get_or_init(|| {
        EXPERIMENTS
            .iter()
            .map(|e| figures::run(*e, &cfg()))
            .collect()
    })
}

fn platforms_of(fig: &FigureData) -> Vec<String> {
    grid::platforms_of(fig, grid::FAILOVER_SCATTER_P99)
}

fn series<'f>(fig: &'f FigureData, platform: &str, metric: &str) -> &'f Series {
    fig.series_named(&format!("{platform} {metric}"))
        .unwrap_or_else(|| panic!("{:?} lacks {platform} {metric}", fig.experiment))
}

#[test]
fn failover_figures_are_bit_identical_for_1_2_and_8_workers() {
    let serial = failover_figures();
    let serial_csv: Vec<String> = serial.iter().map(report::to_csv).collect();
    for workers in [1, 2, 8] {
        let run = Executor::new(
            RunPlan::new(cfg())
                .with_shard("cluster_failover")
                .with_workers(workers),
        )
        .run();
        assert_eq!(&run.figures, serial, "workers={workers}");
        let csv: Vec<String> = run.figures.iter().map(report::to_csv).collect();
        assert_eq!(
            csv, serial_csv,
            "workers={workers} must render identical bytes"
        );
    }
}

#[test]
fn sweeps_cover_every_platform_metric_and_setting() {
    for fig in failover_figures() {
        let platforms = platforms_of(fig);
        assert!(
            platforms.len() >= 3,
            "{:?} covers only {platforms:?}",
            fig.experiment
        );
        assert_eq!(
            fig.series.len(),
            platforms.len() * grid::FAILOVER_METRICS.len()
        );
        for platform in &platforms {
            for metric in grid::FAILOVER_METRICS {
                let s = series(fig, platform, metric);
                for label in SETTING_LABELS {
                    assert!(
                        s.points.iter().any(|p| p.x == label),
                        "{:?}/{platform} {metric} lacks the {label} point",
                        fig.experiment
                    );
                }
                for p in &s.points {
                    assert!(p.mean.is_finite());
                }
            }
        }
    }
}

#[test]
fn fault_injection_marks_exactly_the_kill_settings() {
    // `fail at` is the µs offset of the deterministic shard kill; the
    // −1 sentinel marks fault-free settings. Hand-offs only happen when
    // a shard dies, and a kill must always re-route at least one key.
    for fig in failover_figures() {
        for platform in platforms_of(fig) {
            let fail_at = series(fig, &platform, grid::FAILOVER_FAIL_AT);
            let handoffs = series(fig, &platform, grid::FAILOVER_HANDOFFS);
            for point in &fail_at.points {
                let killed = matches!(point.x.as_str(), "r2 fail" | "r2 failrec" | "r3 failrec");
                let moved = handoffs.mean_of(&point.x).unwrap();
                if killed {
                    assert!(
                        point.mean > 0.0 && moved > 0.0,
                        "{:?}/{platform} {}: kill at {} with {} hand-offs",
                        fig.experiment,
                        point.x,
                        point.mean,
                        moved
                    );
                } else {
                    assert!(
                        point.mean == -1.0 && moved == 0.0,
                        "{:?}/{platform} {}: fault-free point reports kill at {} \
                         with {} hand-offs",
                        fig.experiment,
                        point.x,
                        point.mean,
                        moved
                    );
                }
            }
        }
    }
}
