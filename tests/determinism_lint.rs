//! Tier-1 gate: the determinism lint must pass on the tree under test.
//!
//! Bit-identical figures only hold if no simulation code reads wall
//! clocks, iterates hash containers, pulls ambient entropy, spawns
//! threads outside the executor, or hardcodes experiment counts.
//! `simlint` enforces those rules statically; this test makes a clean
//! report part of `cargo test` itself so a violation fails fast even
//! when the `lint-determinism` CI job is skipped.

use simlint::Workspace;

#[test]
fn simlint_reports_a_clean_tree() {
    let root = env!("CARGO_MANIFEST_DIR");
    let report = Workspace::new(root).scan().expect("scan workspace");
    assert!(
        report.clean(),
        "determinism findings (fix or add a reasoned simlint::allow):\n{}",
        simlint::report::to_text(&report)
    );
}
