//! Acceptance tests of the timing-wheel event core: the full evaluation
//! grid stays byte-identical across executor worker counts on the wheel,
//! and scheduling semantics shared with the retained reference heap hold
//! at the simulation surface.

use isolation_bench::prelude::*;
use isolation_bench::simcore::{EventQueue, ReferenceHeap, Simulation};

#[test]
fn full_grid_figures_are_byte_identical_for_1_2_and_8_workers_on_the_wheel() {
    // Every grid experiment now runs its simulations on the timing
    // wheel; the executor's determinism guarantee must be unchanged:
    // any worker count renders the same figure bytes.
    let cfg = RunConfig::quick(2021);
    let serial = Executor::new(RunPlan::new(cfg).with_trials(1).with_workers(1)).run();
    // The expected figure count is derived, never hardcoded: a literal
    // here went stale in two previous PRs (simlint rule D005 now rejects
    // the pattern outright).
    assert_eq!(
        serial.figures.len(),
        ExperimentId::all().len(),
        "the full grid must cover every experiment"
    );
    let serial_csv: Vec<String> = serial.figures.iter().map(report::to_csv).collect();
    for workers in [2, 8] {
        let run = Executor::new(RunPlan::new(cfg).with_trials(1).with_workers(workers)).run();
        assert_eq!(run.figures, serial.figures, "workers={workers}");
        let csv: Vec<String> = run.figures.iter().map(report::to_csv).collect();
        assert_eq!(
            csv, serial_csv,
            "workers={workers} must render identical bytes"
        );
    }
}

#[test]
fn past_timestamps_fire_at_the_frontier_on_both_event_queues() {
    // The shared past-timestamp contract: a push behind the pop frontier
    // fires AT the frontier (after everything already pending there),
    // identically on the wheel and on the reference heap.
    let mut wheel = EventQueue::new();
    let mut heap = ReferenceHeap::new();
    wheel.push(Nanos::from_millis(4), 0u32);
    heap.push(Nanos::from_millis(4), 0u32);
    assert_eq!(wheel.pop(), heap.pop());
    wheel.push(Nanos::from_millis(1), 1);
    heap.push(Nanos::from_millis(1), 1);
    assert_eq!(wheel.peek_time(), Some(Nanos::from_millis(4)));
    assert_eq!(wheel.pop(), Some((Nanos::from_millis(4), 1)));
    assert_eq!(heap.pop(), Some((Nanos::from_millis(4), 1)));
}

#[test]
fn simulation_clock_never_rewinds_for_past_schedules() {
    // The Simulation surface of the same contract: scheduling strictly in
    // the past runs the action at `now`, in scheduling order among the
    // other actions already pending at `now`.
    let mut sim: Simulation<Vec<(u64, u32)>> = Simulation::new();
    sim.schedule_at(Nanos::from_millis(7), |sim, log: &mut Vec<(u64, u32)>| {
        log.push((sim.now().as_nanos(), 0));
        // Both land at now == 7ms, in scheduling order, and the clock
        // stays monotone through and after them.
        sim.schedule_at(Nanos::from_millis(2), |sim, log| {
            log.push((sim.now().as_nanos(), 1));
        });
        sim.schedule_at(Nanos::ZERO, |sim, log| {
            log.push((sim.now().as_nanos(), 2));
        });
    });
    let mut log = Vec::new();
    let end = sim.run(&mut log);
    assert_eq!(
        log,
        vec![(7_000_000, 0), (7_000_000, 1), (7_000_000, 2)],
        "past schedules fire at now, FIFO among equal timestamps"
    );
    assert_eq!(end, Nanos::from_millis(7));
}

#[test]
fn a_wheel_slots_worth_of_events_drains_at_one_clock_advance() {
    // Batched draining at the simulation surface: many events at one tick
    // all observe the same `now` and drain without intermediate clock
    // movement, while the pending count falls one by one.
    let mut sim: Simulation<Vec<u64>> = Simulation::new();
    let at = Nanos::from_micros(42);
    for _ in 0..64 {
        sim.schedule_at(at, |sim, log: &mut Vec<u64>| {
            log.push(sim.now().as_nanos());
        });
    }
    let mut log = Vec::new();
    sim.run(&mut log);
    assert_eq!(log.len(), 64);
    assert!(log.iter().all(|&t| t == at.as_nanos()));
}
