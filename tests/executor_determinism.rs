//! The executor's headline guarantee: figure data is bit-identical for
//! every worker count and matches the serial figure path byte for byte.

use isolation_bench::prelude::*;

fn small() -> RunConfig {
    RunConfig {
        seed: 7,
        runs: 2,
        startups: 24,
        quick: true,
    }
}

#[test]
fn any_worker_count_is_bit_identical_to_the_serial_path() {
    let cfg = small();
    let serial: Vec<FigureData> = figures::run_all(&cfg);
    let serial_csv: Vec<String> = serial.iter().map(report::to_csv).collect();
    for workers in [1, 2, 8] {
        let run = Executor::new(RunPlan::new(cfg).with_workers(workers)).run();
        assert_eq!(run.workers, workers);
        assert_eq!(run.figures, serial, "workers={workers}");
        let csv: Vec<String> = run.figures.iter().map(report::to_csv).collect();
        assert_eq!(
            csv, serial_csv,
            "workers={workers} must render identical bytes"
        );
    }
}

#[test]
fn shard_filter_runs_only_matching_experiments() {
    let run = Executor::new(RunPlan::new(small()).with_shard("boot").with_workers(2)).run();
    let slugs: Vec<&str> = run.figures.iter().map(|f| f.experiment.slug()).collect();
    assert_eq!(
        slugs,
        [
            "fig13_boot_containers",
            "fig14_boot_hypervisors",
            "fig15_boot_osv"
        ]
    );
    // Sharding does not change the data relative to the full run.
    let full = figures::run(ExperimentId::Fig14BootHypervisors, &small());
    assert_eq!(
        *run.figure(ExperimentId::Fig14BootHypervisors).unwrap(),
        full
    );
}

#[test]
fn trial_override_scales_the_cell_grid_without_changing_its_shape() {
    let plan = RunPlan::new(small())
        .with_shard("fig05")
        .with_trials(5)
        .with_workers(4);
    let run = Executor::new(plan).run();
    assert_eq!(run.timings[0].cells, 10 * 5);
    assert_eq!(run.figures[0].series[0].points.len(), 10);
}
