//! Acceptance tests of the open-loop load-curve subsystem: the sweep's
//! shape, the percentile ordering and saturation behaviour of the merged
//! figures, and bit-identical results across executor worker counts.

use std::sync::OnceLock;

use isolation_bench::prelude::*;

fn cfg() -> RunConfig {
    RunConfig::quick(2021)
}

/// The serial reference figures, computed once: they are a pure function
/// of the fixed seed, and every test in this file reads them.
fn load_figures() -> &'static Vec<FigureData> {
    static FIGURES: OnceLock<Vec<FigureData>> = OnceLock::new();
    FIGURES.get_or_init(|| {
        [ExperimentId::LoadMemcached, ExperimentId::LoadMysql]
            .iter()
            .map(|e| figures::run(*e, &cfg()))
            .collect()
    })
}

#[test]
fn load_curves_are_bit_identical_for_1_2_and_8_workers() {
    let serial = load_figures();
    let serial_csv: Vec<String> = serial.iter().map(report::to_csv).collect();
    for workers in [1, 2, 8] {
        let run = Executor::new(
            RunPlan::new(cfg())
                .with_shard("load_")
                .with_workers(workers),
        )
        .run();
        assert_eq!(&run.figures, serial, "workers={workers}");
        let csv: Vec<String> = run.figures.iter().map(report::to_csv).collect();
        assert_eq!(
            csv, serial_csv,
            "workers={workers} must render identical bytes"
        );
    }
}

#[test]
fn load_sweeps_cover_enough_points_and_platforms() {
    for fig in load_figures() {
        let platforms: Vec<&str> = fig
            .series
            .iter()
            .filter_map(|s| s.label.strip_suffix(" p50 (us)"))
            .collect();
        assert!(
            platforms.len() >= 3,
            "{:?} covers only {platforms:?}",
            fig.experiment
        );
        for series in &fig.series {
            assert!(
                series.points.len() >= 5,
                "{:?}/{} sweeps only {} offered-load points",
                fig.experiment,
                series.label,
                series.points.len()
            );
        }
    }
}

#[test]
fn percentiles_are_ordered_at_every_offered_load() {
    for fig in load_figures() {
        let platforms: Vec<String> = fig
            .series
            .iter()
            .filter_map(|s| s.label.strip_suffix(" p50 (us)"))
            .map(str::to_string)
            .collect();
        for platform in &platforms {
            let series = |metric: &str| fig.series_named(&format!("{platform} {metric}")).unwrap();
            let p50 = series("p50 (us)");
            let p95 = series("p95 (us)");
            let p99 = series("p99 (us)");
            for i in 0..p50.points.len() {
                let (a, b, c) = (p50.points[i].mean, p95.points[i].mean, p99.points[i].mean);
                assert!(
                    a <= b && b <= c,
                    "{:?}/{platform} at {}: p50 {a} p95 {b} p99 {c}",
                    fig.experiment,
                    p50.points[i].x
                );
                assert!(a.is_finite() && c.is_finite());
                assert!(a > 0.0);
            }
        }
    }
}

#[test]
fn latency_is_non_decreasing_toward_saturation() {
    for fig in load_figures() {
        for series in fig
            .series
            .iter()
            .filter(|s| s.label.ends_with("p99 (us)") || s.label.ends_with("p50 (us)"))
        {
            let mut last = 0.0f64;
            for point in &series.points {
                assert!(
                    point.mean >= last,
                    "{:?}/{} not monotone at offered fraction {}: {} < {last}",
                    fig.experiment,
                    series.label,
                    point.x,
                    point.mean
                );
                last = point.mean;
            }
            // The curve must actually inflate, not just stay flat.
            let first = series.points.first().unwrap().mean;
            assert!(
                last > first,
                "{:?}/{} never inflates ({first} -> {last})",
                fig.experiment,
                series.label
            );
        }
    }
}

#[test]
fn achieved_throughput_tracks_offered_load_below_saturation() {
    for fig in load_figures() {
        for series in fig
            .series
            .iter()
            .filter(|s| s.label.ends_with("achieved (req/s)"))
        {
            let mut last = 0.0f64;
            for point in &series.points {
                assert!(
                    point.mean > last,
                    "{:?}/{} achieved throughput must grow with offered load",
                    fig.experiment,
                    series.label
                );
                last = point.mean;
            }
        }
    }
}
