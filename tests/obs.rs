//! The observability layer's facade-level guarantees: trace artifacts
//! are a pure function of the root seed — byte-identical across runs,
//! executor worker counts, and cluster core-lane counts — and a
//! zero-rate recorder records nothing at all.

use isolation_bench::harness::obs::{recorder_for, traced_run};
use isolation_bench::prelude::*;
use isolation_bench::simcore::obs::{ObsConfig, Recorder, Span};
use isolation_bench::simcore::rng;
use isolation_bench::workloads::cluster::{ClusterBenchmark, ClusterSetting};
use isolation_bench::workloads::loadgen::LoadgenBenchmark;
use isolation_bench::workloads::LoadBackend;

const SEED: u64 = 2021;

fn small() -> RunConfig {
    RunConfig {
        seed: SEED,
        runs: 2,
        startups: 24,
        quick: true,
    }
}

#[test]
fn trace_artifacts_are_byte_identical_across_executor_worker_counts() {
    // The recorder draws nothing from ambient state: running the figure
    // grid through the executor at any worker count leaves the traced
    // artifacts (and the figures themselves) byte-identical.
    let reference = traced_run("pipeline", true, SEED).unwrap();
    let serial = Executor::new(RunPlan::new(small()).with_shard("boot").with_workers(1)).run();
    for workers in [2, 8] {
        let run = Executor::new(
            RunPlan::new(small())
                .with_shard("boot")
                .with_workers(workers),
        )
        .run();
        assert_eq!(run.figures, serial.figures, "workers={workers}");
        let traced = traced_run("pipeline", true, SEED).unwrap();
        assert_eq!(traced.chrome, reference.chrome, "workers={workers}");
        assert_eq!(traced.timeline, reference.timeline, "workers={workers}");
    }
    assert!(reference.spans_accepted > 0);
}

#[test]
fn cluster_trace_is_byte_identical_across_core_lane_counts() {
    let platform = PlatformId::Docker.build();
    let setting = ClusterSetting::rebalance(16);
    let mut artifacts = Vec::new();
    for cores in [1_usize, 2, 4, 8] {
        let mut bench = ClusterBenchmark::quick(LoadBackend::Memcached);
        bench.shard_cores = cores;
        let mut run_rng = rng::derive(SEED, "trace", "cluster", 0);
        let recorder = recorder_for("cluster", SEED).unwrap();
        let (point, obs) = bench
            .run_setting_traced(&platform, &setting, &mut run_rng, recorder)
            .unwrap();
        artifacts.push((
            point,
            obs.chrome_trace_json("cluster"),
            obs.timeline_json("cluster", SEED),
        ));
    }
    let (reference_point, reference_chrome, reference_timeline) = &artifacts[0];
    for (i, (point, chrome, timeline)) in artifacts.iter().enumerate().skip(1) {
        let cores = [1, 2, 4, 8][i];
        assert_eq!(point, reference_point, "cores={cores}");
        assert_eq!(chrome, reference_chrome, "cores={cores}");
        assert_eq!(timeline, reference_timeline, "cores={cores}");
    }
    assert!(reference_chrome.contains("\"route\""));
    assert!(reference_timeline.contains("isolation-bench/obs/v1"));
}

#[test]
fn the_sampled_span_set_is_identical_across_runs() {
    let spans = |seed: u64| -> Vec<Span> {
        let platform = PlatformId::Docker.build();
        let bench = LoadgenBenchmark::quick(LoadBackend::Memcached);
        let mut run_rng = SimRng::seed_from(seed);
        let recorder = Recorder::try_new(ObsConfig::new(
            rng::derive_seed(seed, "obs", "loadgen", 0),
            0.25,
        ))
        .unwrap();
        let (_, obs) = bench
            .run_point_traced(&platform, 0.8, &mut run_rng, recorder)
            .unwrap();
        obs.spans()
    };
    let first = spans(SEED);
    assert!(!first.is_empty());
    assert_eq!(first, spans(SEED), "same seed, same sampled span set");
    assert_ne!(first, spans(SEED + 1), "the sample is seed-derived");
}

#[test]
fn a_zero_sample_rate_run_records_no_spans() {
    let platform = PlatformId::Docker.build();
    let bench = LoadgenBenchmark::quick(LoadBackend::Memcached);
    let recorder = Recorder::try_new(ObsConfig::new(SEED, 0.0)).unwrap();
    let mut traced_rng = SimRng::seed_from(SEED);
    let (traced_point, obs) = bench
        .run_point_traced(&platform, 0.8, &mut traced_rng, recorder)
        .unwrap();
    assert_eq!(obs.spans_accepted(), 0);
    assert!(obs.spans().is_empty());
    assert!(!obs.chrome_trace_json("loadgen").contains("slot-service"));
    // Tracing at rate zero is still observation only.
    let mut plain_rng = SimRng::seed_from(SEED);
    let plain_point = bench.run_point(&platform, 0.8, &mut plain_rng).unwrap();
    assert_eq!(traced_point, plain_point);
}
