//! Integration tests spanning the whole workspace: regenerate figures
//! through the facade crate and verify the paper's headline shapes.

use isolation_bench::prelude::*;

fn cfg() -> RunConfig {
    RunConfig::quick(2021)
}

#[test]
fn figure_11_reproduces_the_network_ordering() {
    let fig = figures::run(ExperimentId::Fig11Iperf, &cfg());
    let s = &fig.series[0];
    let v = |x: &str| s.mean_of(x).unwrap();
    assert!(v("native") > v("osv"));
    assert!(v("osv") > v("docker"));
    assert!(v("docker") > v("qemu"));
    assert!(v("qemu") > v("cloud-hypervisor"));
    assert!(v("gvisor") < v("cloud-hypervisor") * 0.5);
}

#[test]
fn figure_17_groups_hold_through_the_facade() {
    let fig = figures::run(ExperimentId::Fig17Mysql, &cfg());
    let best = |label: &str| {
        fig.series_named(label)
            .unwrap()
            .points
            .iter()
            .map(|p| p.mean)
            .fold(0.0f64, f64::max)
    };
    let main_group = best("docker").min(best("qemu")).min(best("native"));
    assert!(
        best("osv") < main_group * 0.5,
        "osv group must be far below"
    );
    assert!(best("gvisor") < main_group * 0.5);
    assert!(best("firecracker") < main_group * 0.85);
    assert!(best("kata") < main_group * 0.9);
}

#[test]
fn figure_18_orders_firecracker_widest_and_osv_narrowest() {
    let fig = figures::run(ExperimentId::Fig18Hap, &cfg());
    let s = fig.series_named("distinct host kernel functions").unwrap();
    let fc = s.mean_of("firecracker").unwrap();
    let osv = s.mean_of("osv").unwrap();
    for p in &s.points {
        if p.x != "firecracker" {
            assert!(p.mean < fc, "{} not below firecracker", p.x);
        }
        if p.x != "osv" && p.x != "osv-fc" {
            assert!(p.mean > osv, "{} not above osv", p.x);
        }
    }
}

#[test]
fn every_figure_generates_non_empty_markdown_and_csv() {
    for figure in figures::run_all(&cfg()) {
        let md = report::to_markdown(&figure);
        let csv = report::to_csv(&figure);
        assert!(
            md.contains("###"),
            "{:?} markdown missing title",
            figure.experiment
        );
        assert!(csv.lines().count() > 1, "{:?} csv empty", figure.experiment);
        assert!(!figure.series.is_empty());
    }
}

#[test]
fn results_are_reproducible_for_a_fixed_seed() {
    let a = figures::run(ExperimentId::Fig08Stream, &cfg());
    let b = figures::run(ExperimentId::Fig08Stream, &cfg());
    assert_eq!(a, b);
    let other_seed = figures::run(ExperimentId::Fig08Stream, &RunConfig::quick(999));
    assert_ne!(a, other_seed);
}
