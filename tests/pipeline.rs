//! Acceptance tests of the middleware-pipeline subsystem: the merged
//! figures' shape, the depth-monotone latency response, short-circuit
//! behaviour under a swept rejection rate, the full-hit-cache reduction
//! to a constant-cost chain, and bit-identical results across executor
//! worker counts.

use std::sync::OnceLock;

use isolation_bench::harness::grid;
use isolation_bench::harness::Series;
use isolation_bench::prelude::*;
use isolation_bench::workloads::pipeline::BASELINE_HIT_RATE;
use isolation_bench::workloads::{LoadBackend, PipelineBenchmark, PipelineSetting};

fn cfg() -> RunConfig {
    RunConfig::quick(2021)
}

const EXPERIMENTS: [ExperimentId; 2] =
    [ExperimentId::PipelineMemcached, ExperimentId::PipelineMysql];

/// Labels of the warm-cache depth sweep, in ascending depth order.
const DEPTH_LABELS: [&str; 5] = ["d1 h0.90", "d2 h0.90", "d4 h0.90", "d6 h0.90", "d8 h0.90"];

/// The serial reference figures, computed once: they are a pure function
/// of the fixed seed, and every test in this file reads them.
fn pipeline_figures() -> &'static Vec<FigureData> {
    static FIGURES: OnceLock<Vec<FigureData>> = OnceLock::new();
    FIGURES.get_or_init(|| {
        EXPERIMENTS
            .iter()
            .map(|e| figures::run(*e, &cfg()))
            .collect()
    })
}

fn platforms_of(fig: &FigureData) -> Vec<String> {
    grid::platforms_of(fig, grid::PIPELINE_STAGE_TAX)
}

fn series<'f>(fig: &'f FigureData, platform: &str, metric: &str) -> &'f Series {
    fig.series_named(&format!("{platform} {metric}"))
        .unwrap_or_else(|| panic!("{:?} lacks {platform} {metric}", fig.experiment))
}

#[test]
fn pipeline_figures_are_bit_identical_for_1_2_and_8_workers() {
    let serial = pipeline_figures();
    let serial_csv: Vec<String> = serial.iter().map(report::to_csv).collect();
    for workers in [1, 2, 8] {
        let run = Executor::new(
            RunPlan::new(cfg())
                .with_shard("pipeline")
                .with_workers(workers),
        )
        .run();
        assert_eq!(&run.figures, serial, "workers={workers}");
        let csv: Vec<String> = run.figures.iter().map(report::to_csv).collect();
        assert_eq!(
            csv, serial_csv,
            "workers={workers} must render identical bytes"
        );
    }
}

#[test]
fn sweeps_cover_every_platform_metric_and_the_storm_point() {
    for fig in pipeline_figures() {
        let platforms = platforms_of(fig);
        assert!(
            platforms.len() >= 3,
            "{:?} covers only {platforms:?}",
            fig.experiment
        );
        assert_eq!(
            fig.series.len(),
            platforms.len() * grid::PIPELINE_METRICS.len()
        );
        for platform in &platforms {
            for metric in grid::PIPELINE_METRICS {
                let s = series(fig, platform, metric);
                assert!(
                    s.points.len() >= 8,
                    "{:?}/{platform} {metric} sweeps only {} points",
                    fig.experiment,
                    s.points.len()
                );
                for label in DEPTH_LABELS {
                    assert!(
                        s.points.iter().any(|p| p.x == label),
                        "{:?}/{platform} {metric} lacks the {label} point",
                        fig.experiment
                    );
                }
                assert!(
                    s.points.iter().any(|p| p.x == "d4 miss-storm"),
                    "{:?}/{platform} {metric} lacks the miss-storm point",
                    fig.experiment
                );
                for p in &s.points {
                    assert!(p.mean.is_finite());
                }
            }
        }
    }
}

#[test]
fn latency_is_monotone_in_chain_depth() {
    // Deeper chains cannot be cheaper at the median: p50 grows along the
    // warm-cache depth sweep, with a small plateau tolerance for
    // queueing noise. The p99 tail is deliberately exempt — a deep chain
    // sums more independent stage costs, which *tightens* the relative
    // tail and can pull absolute p99 down on high-variance platforms —
    // but it must stay above the point's own median everywhere.
    for fig in pipeline_figures() {
        for platform in platforms_of(fig) {
            {
                let s = series(fig, &platform, grid::PIPELINE_P50);
                let depth_means: Vec<f64> = DEPTH_LABELS
                    .iter()
                    .map(|label| {
                        s.mean_of(label)
                            .unwrap_or_else(|| panic!("p50 lacks {label}"))
                    })
                    .collect();
                let mut last = 0.0f64;
                for (label, mean) in DEPTH_LABELS.iter().zip(&depth_means) {
                    assert!(
                        *mean >= last * 0.95,
                        "{:?}/{platform} p50 regresses at {label}: {mean} after {last}",
                        fig.experiment
                    );
                    last = last.max(*mean);
                }
                assert!(
                    depth_means[DEPTH_LABELS.len() - 1] > depth_means[0],
                    "{:?}/{platform} p50 never grows with depth",
                    fig.experiment
                );
            }
            let p50 = series(fig, &platform, grid::PIPELINE_P50);
            let p99 = series(fig, &platform, grid::PIPELINE_P99);
            for (a, b) in p50.points.iter().zip(&p99.points) {
                assert!(
                    b.mean >= a.mean,
                    "{:?}/{platform} p99 {} undercuts p50 {} at {}",
                    fig.experiment,
                    b.mean,
                    a.mean,
                    a.x
                );
            }
            // The stage tax is strictly monotone in depth: it is the
            // chain cost itself, not a queueing-noisy percentile.
            let tax = series(fig, &platform, grid::PIPELINE_STAGE_TAX);
            let taxes: Vec<f64> = DEPTH_LABELS
                .iter()
                .map(|label| tax.mean_of(label).unwrap())
                .collect();
            for pair in taxes.windows(2) {
                assert!(
                    pair[1] > pair[0],
                    "{:?}/{platform} stage tax must grow strictly with depth: {taxes:?}",
                    fig.experiment
                );
            }
        }
    }
}

#[test]
fn fractions_are_probabilities_and_the_storm_runs_cold() {
    for fig in pipeline_figures() {
        for platform in platforms_of(fig) {
            for metric in [
                grid::PIPELINE_SHORT_CIRCUIT,
                grid::PIPELINE_CACHE_HIT,
                grid::PIPELINE_DROP_RATE,
            ] {
                for point in &series(fig, &platform, metric).points {
                    assert!(
                        (0.0..=1.0).contains(&point.mean),
                        "{:?}/{platform} {metric} = {} is not a fraction",
                        fig.experiment,
                        point.mean
                    );
                }
            }
            let hits = series(fig, &platform, grid::PIPELINE_CACHE_HIT);
            assert!(
                hits.mean_of("d4 miss-storm").unwrap() < 0.01,
                "{:?}/{platform}: the miss storm must run a cold cache",
                fig.experiment
            );
            assert!(
                hits.mean_of("d4 h0.90").unwrap() > 0.5,
                "{:?}/{platform}: the warm point must mostly hit",
                fig.experiment
            );
        }
    }
}

#[test]
fn short_circuit_fraction_is_monotone_in_the_configured_rate() {
    // Common random numbers couple the rejection draws across runs: the
    // requests rejected at a lower rate are a subset of those rejected at
    // a higher one, so the measured fraction is monotone in the
    // configured rate — not merely in expectation.
    let platform = PlatformId::Docker.build();
    let mut last = -1.0f64;
    for rate in [0.0, 0.05, 0.15, 0.3] {
        let bench = PipelineBenchmark {
            clients: 64,
            requests_per_point: 800,
            runs: 1,
            auth_reject_rate: rate,
            sweep: vec![PipelineSetting::new(3, BASELINE_HIT_RATE)],
            ..PipelineBenchmark::quick(LoadBackend::Memcached)
        };
        let point = &bench
            .run_trial(&platform, &mut SimRng::seed_from(2021))
            .unwrap()[0];
        assert!((0.0..=1.0).contains(&point.short_circuit_fraction));
        assert!(
            point.short_circuit_fraction >= last,
            "fraction {} at rate {rate} undercuts {last}",
            point.short_circuit_fraction
        );
        if rate == 0.0 {
            assert_eq!(point.short_circuit_fraction, 0.0);
        }
        last = point.short_circuit_fraction;
    }
    assert!(
        last > 0.2,
        "a 30% rejection rate must visibly short-circuit"
    );
}

#[test]
fn a_full_hit_cache_reduces_to_a_depth_equivalent_constant_cost_chain() {
    // Sim-level reduction: an auth cache that always hits is
    // indistinguishable from one whose miss penalty equals its hit cost
    // (at any hit rate) — with warmup disabled both charge exactly the
    // hit cost on every access, so every timing and throughput figure
    // matches bit for bit, at every depth of the sweep.
    let base = PipelineBenchmark {
        clients: 64,
        requests_per_point: 800,
        runs: 1,
        cache_warm_after: 0,
        sweep: vec![
            PipelineSetting::new(1, 1.0),
            PipelineSetting::new(4, 1.0),
            PipelineSetting::new(8, 1.0),
        ],
        ..PipelineBenchmark::quick(LoadBackend::Memcached)
    };
    let full_hit = base.clone();
    let flat_cost = PipelineBenchmark {
        // Any hit rate: hit and miss now charge the same latency.
        cache_miss_frac: base.cache_hit_frac,
        sweep: base
            .sweep
            .iter()
            .map(|s| PipelineSetting::new(s.depth, BASELINE_HIT_RATE))
            .collect(),
        ..base
    };
    let platform = PlatformId::Native.build();
    let a = full_hit
        .run_trial(&platform, &mut SimRng::seed_from(2021))
        .unwrap();
    let b = flat_cost
        .run_trial(&platform, &mut SimRng::seed_from(2021))
        .unwrap();
    for (p, q) in a.iter().zip(&b) {
        assert_eq!(p.depth, q.depth);
        assert_eq!(p.offered_per_sec, q.offered_per_sec, "d{}", p.depth);
        assert_eq!(p.achieved_per_sec, q.achieved_per_sec, "d{}", p.depth);
        assert_eq!(p.p50_us, q.p50_us, "d{}", p.depth);
        assert_eq!(p.p95_us, q.p95_us, "d{}", p.depth);
        assert_eq!(p.p99_us, q.p99_us, "d{}", p.depth);
        assert_eq!(p.mean_us, q.mean_us, "d{}", p.depth);
        assert_eq!(p.stage_tax_us, q.stage_tax_us, "d{}", p.depth);
        assert_eq!(p.completed, q.completed, "d{}", p.depth);
        assert_eq!(p.dropped, q.dropped, "d{}", p.depth);
        assert_eq!(p.cache_hit_fraction, 1.0, "a full-hit cache never misses");
    }
}
