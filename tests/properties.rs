//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use isolation_bench::harness::{grid, ExperimentId};
use isolation_bench::kvstore::{Store, StoreConfig};
use isolation_bench::platforms::PlatformId;
use isolation_bench::relstore::{Database, Row};
use isolation_bench::simcore::stats::{Cdf, RunningStats};
use isolation_bench::simcore::{
    rng, Bandwidth, EventQueue, Nanos, ReferenceHeap, ShardedCores, SimRng,
};
use isolation_bench::workloads::pipeline::BASELINE_HIT_RATE;
use isolation_bench::workloads::slots::{ClassConfig, SlotPolicy, SlotPool};
use isolation_bench::workloads::{
    LoadBackend, MiddlewareChain, PipelineBenchmark, PipelineSetting, Stage,
};

proptest! {
    #[test]
    fn derived_seeds_never_collide_across_the_full_grid(root in 0u64..u64::MAX) {
        // Every (experiment, platform entry, trial) cell of the real
        // evaluation grid must get its own random stream: a collision
        // would make two cells sample identical values.
        let mut seen = std::collections::HashMap::new();
        for experiment in ExperimentId::all() {
            for entry in grid::entries(*experiment) {
                for trial in 0..6u64 {
                    let cell = (experiment.slug(), entry.label, trial);
                    let seed = rng::derive_seed(root, experiment.slug(), entry.label, trial);
                    if let Some(previous) = seen.insert(seed, cell) {
                        panic!("seed collision between {previous:?} and {cell:?} (root {root})");
                    }
                }
            }
        }
    }

    #[test]
    fn running_stats_mean_is_bounded_by_min_and_max(xs in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let stats: RunningStats = xs.iter().copied().collect();
        let mean = stats.mean();
        prop_assert!(mean >= stats.min().unwrap() - 1e-6);
        prop_assert!(mean <= stats.max().unwrap() + 1e-6);
        prop_assert!(stats.std_dev() >= 0.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential(xs in prop::collection::vec(-1e6f64..1e6, 1..100),
                                              ys in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut merged: RunningStats = xs.iter().copied().collect();
        let other: RunningStats = ys.iter().copied().collect();
        merged.merge(&other);
        let all: RunningStats = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - all.variance()).abs() < 1e-3);
    }

    #[test]
    fn running_stats_merge_is_order_insensitive_and_matches_record(
        xs in prop::collection::vec(-1e6f64..1e6, 0..120),
        chunk in 1usize..16,
        rotate in 0usize..16,
    ) {
        // The parallel executor merges per-shard accumulators in whatever
        // grouping the run plan produced; the result must not depend on
        // the order the shards are folded in, and must match a single
        // sequential pass over all observations.
        let shards: Vec<RunningStats> = xs
            .chunks(chunk)
            .map(|c| c.iter().copied().collect())
            .collect();
        let mut forward = RunningStats::new();
        for s in &shards {
            forward.merge(s);
        }
        let mut rotated = RunningStats::new();
        if !shards.is_empty() {
            let pivot = rotate % shards.len();
            for s in shards[pivot..].iter().chain(&shards[..pivot]) {
                rotated.merge(s);
            }
        }
        let sequential: RunningStats = xs.iter().copied().collect();
        for merged in [&forward, &rotated] {
            prop_assert_eq!(merged.count(), sequential.count());
            prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - sequential.variance()).abs() < 1e-2);
            prop_assert_eq!(merged.min(), sequential.min());
            prop_assert_eq!(merged.max(), sequential.max());
        }
        // Empty input stays the pristine empty accumulator (finite summary).
        if xs.is_empty() {
            prop_assert_eq!(forward, RunningStats::new());
        }
    }

    #[test]
    fn slot_pool_conserves_work_under_arbitrary_weights(
        servers in 1usize..6,
        specs in prop::collection::vec((1u64..16, 0usize..24, 1u64..2_000), 1..5),
        ops in prop::collection::vec((any::<bool>(), 0usize..64, 0usize..64), 1..400),
        fifo in any::<bool>(),
    ) {
        // The weighted slot scheduler must conserve work under arbitrary
        // weights, queue depths and per-class costs: per class,
        // offered == dispatched + queued + dropped (so every request is
        // accounted for: completed + dropped + in-flight), granted slots
        // never exceed the pool, and no slot idles while work queues.
        let classes: Vec<ClassConfig> = specs
            .iter()
            .map(|&(weight, queue_capacity, cost)| ClassConfig {
                weight,
                queue_capacity,
                mean_cost: Nanos::from_nanos(cost),
            })
            .collect();
        let policy = if fifo { SlotPolicy::FifoArrival } else { SlotPolicy::WeightedDrr };
        let mut pool: SlotPool<u32> = SlotPool::new(servers, policy, classes.clone()).unwrap();
        let mut now = 0u64;
        for &(is_offer, a, b) in &ops {
            if is_offer {
                now += 1;
                let _ = pool.offer(a % classes.len(), Nanos::from_nanos(now), a as u32);
            } else {
                let busy: Vec<usize> = (0..classes.len())
                    .filter(|&i| pool.counters(i).in_service() > 0)
                    .collect();
                if let Some(&class) = busy.get(b % busy.len().max(1)) {
                    let _ = pool.finish(class);
                }
            }
            prop_assert!(pool.busy() <= servers, "granted slots exceed the pool");
            let mut in_service_total = 0u64;
            for (i, class) in classes.iter().enumerate() {
                let c = pool.counters(i);
                prop_assert_eq!(
                    c.offered,
                    c.dispatched + pool.queued(i) as u64 + c.dropped,
                    "class {} leaks requests", i
                );
                prop_assert!(pool.queued(i) <= class.queue_capacity);
                in_service_total += c.in_service();
            }
            prop_assert_eq!(in_service_total, pool.busy() as u64);
            if pool.busy() < servers {
                prop_assert_eq!(
                    pool.queued_total(), 0,
                    "work conservation: requests queue while a slot idles"
                );
            }
        }
    }

    #[test]
    fn timing_wheel_pops_exactly_the_reference_heap_order(
        ops in prop::collection::vec((any::<bool>(), 0u32..4, 0u64..1024), 1..300),
    ) {
        // The wheel must reproduce the retained reference heap's order on
        // an arbitrary interleaved schedule: pushes at absolute times
        // spanning every wheel level and the overflow spill level (shift
        // 48 jumps past the 2^48 ns horizon, so later pops exercise
        // overflow promotion), repeated timestamps exercising the
        // equal-timestamp FIFO contract, pushes behind the pop frontier
        // exercising the shared fire-at-now clamp, and interleaved pops
        // moving the frontier mid-schedule.
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceHeap::new();
        let mut tag = 0u64;
        for &(is_push, magnitude, raw) in &ops {
            if is_push {
                let at = Nanos::from_nanos(raw << (16 * magnitude));
                wheel.push(at, tag);
                heap.push(at, tag);
                tag += 1;
            } else {
                prop_assert_eq!(wheel.pop(), heap.pop());
            }
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.frontier(), heap.frontier());
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cdf_percentiles_are_monotone(xs in prop::collection::vec(0.0f64..1e6, 1..300)) {
        let cdf = Cdf::from_samples(xs).unwrap();
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = cdf.percentile(p);
            prop_assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn nanos_arithmetic_never_underflows(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let x = Nanos::from_nanos(a);
        let y = Nanos::from_nanos(b);
        prop_assert_eq!((x + y).as_nanos(), a + b);
        prop_assert_eq!(x.saturating_sub(y).as_nanos(), a.saturating_sub(b));
    }

    #[test]
    fn bandwidth_transfer_time_is_monotone_in_size(bytes_small in 1u64..1_000_000, extra in 1u64..1_000_000) {
        let bw = Bandwidth::from_mib_per_sec(100.0);
        let small = bw.transfer_time(bytes_small);
        let large = bw.transfer_time(bytes_small + extra);
        prop_assert!(large >= small);
    }

    #[test]
    fn rng_with_same_seed_is_identical(seed in 0u64..u64::MAX, n in 1usize..64) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn kvstore_reads_what_it_writes(entries in prop::collection::btree_map(".{1,16}", prop::collection::vec(any::<u8>(), 0..64), 1..50)) {
        let store = Store::new(StoreConfig::default());
        for (k, v) in &entries {
            store.set(k.as_bytes(), v.clone());
        }
        for (k, v) in &entries {
            prop_assert_eq!(store.get(k.as_bytes()), Some(v.clone()));
        }
        prop_assert_eq!(store.stats().entries as usize, entries.len());
    }

    #[test]
    fn relstore_secondary_index_stays_consistent(ops in prop::collection::vec((1u64..200, 0u64..50), 1..100)) {
        let db = Database::new();
        let table = db.create_table("t");
        for (i, (id, k)) in ops.iter().enumerate() {
            match i % 3 {
                0 => { let _ = table.insert(Row::new(*id, *k, String::new())); }
                1 => { let _ = table.update_k(*id, *k); }
                _ => { let _ = table.delete(*id); }
            }
        }
        // Every row reachable by primary key must be indexed under its k,
        // and every index entry must point to a live row with that k.
        for id in 1..200u64 {
            if let Some(row) = table.get(id) {
                prop_assert!(table.find_by_k(row.k).contains(&id));
            }
        }
        for k in 0..50u64 {
            for id in table.find_by_k(k) {
                let row = table.get(id);
                prop_assert!(row.is_some());
                prop_assert_eq!(row.unwrap().k, k);
            }
        }
    }

    #[test]
    fn middleware_traversal_accounts_for_every_stage(
        specs in prop::collection::vec(
            ((0.0f64..200.0, 0.0f64..0.6, 0.0f64..1.0), (any::<bool>(), 0.0f64..50.0, 0.0f64..500.0)),
            0..10,
        ),
        requests in 1usize..60,
    ) {
        // Chain-level bookkeeping under arbitrary stages: the traversal
        // enters exactly the prefix up to and including the first
        // short-circuit, cache hits and misses count only entered cached
        // stages, and the charged cost is finite and non-negative.
        let cached_flags: Vec<bool> = specs.iter().map(|s| s.1 .0).collect();
        let stages: Vec<Stage> = specs
            .iter()
            .enumerate()
            .map(|(i, &((in_us, sigma, sc), (cached, hit_us, miss_us)))| {
                let stage = Stage::try_new(&format!("s{i}"), in_us, sigma)
                    .unwrap()
                    .with_short_circuit(sc)
                    .unwrap()
                    .with_out_phase(in_us / 2.0, sigma)
                    .unwrap();
                if cached {
                    stage.with_cache(hit_us, miss_us, 0.5, 8).unwrap()
                } else {
                    stage
                }
            })
            .collect();
        let mut chain = MiddlewareChain::new(stages);
        let mut root = SimRng::seed_from(11);
        let mut rngs: Vec<SimRng> = (0..chain.depth()).map(|i| root.split(&format!("s{i}"))).collect();
        for _ in 0..requests {
            let t = chain.traverse(&mut rngs);
            let expected_traversed = t.short_circuit.map(|i| i + 1).unwrap_or(chain.depth());
            prop_assert_eq!(t.stages_traversed, expected_traversed);
            if let Some(i) = t.short_circuit {
                prop_assert!(specs[i].0 .2 > 0.0, "stage {} cannot fire at rate 0", i);
            }
            let cached_entered = cached_flags[..t.stages_traversed]
                .iter()
                .filter(|&&c| c)
                .count();
            prop_assert_eq!((t.cache_hits + t.cache_misses) as usize, cached_entered);
            prop_assert!(t.stage_cost.as_nanos() < u64::MAX / 2);
        }
    }
}

proptest! {
    #[test]
    fn pipeline_conserves_requests_and_never_beats_its_stage_costs(
        depth in 0usize..6,
        offered in 0.2f64..2.2,
        reject in 0.0f64..0.4,
        hit_rate in 0.0f64..1.0,
        stage_in_frac in 0.0f64..0.4,
        stage_out_frac in 0.0f64..0.2,
        cache_miss_frac in 0.0f64..2.0,
        stage_sigma in 0.0f64..0.5,
        queue_capacity in 1usize..64,
    ) {
        // End-to-end conservation under arbitrary chains and loads: every
        // offered request is exactly one of completed, short-circuited or
        // dropped; no response returns faster than the middleware cost it
        // was charged; and the reported fractions are probabilities.
        let bench = PipelineBenchmark {
            clients: 32,
            requests_per_point: 240,
            runs: 1,
            offered_fraction: offered,
            queue_capacity,
            auth_reject_rate: reject,
            stage_in_frac,
            stage_out_frac,
            cache_miss_frac,
            stage_sigma,
            sweep: vec![PipelineSetting::new(depth, hit_rate)],
            ..PipelineBenchmark::quick(LoadBackend::Memcached)
        };
        let platform = PlatformId::Native.build();
        let point = &bench.run_trial(&platform, &mut SimRng::seed_from(12)).unwrap()[0];
        prop_assert_eq!(
            point.completed + point.short_circuited + point.dropped,
            bench.requests_per_point as u64,
            "requests leaked: {:?}", point
        );
        prop_assert!(point.min_slack_us >= 0.0, "a response beat its stage costs: {:?}", point);
        for fraction in [
            point.short_circuit_fraction,
            point.cache_hit_fraction,
            point.drop_fraction,
        ] {
            prop_assert!((0.0..=1.0).contains(&fraction), "{:?}", point);
        }
        if depth == 0 {
            prop_assert_eq!(point.short_circuited, 0);
            prop_assert_eq!(point.stage_tax_us, 0.0);
        }
        prop_assert!(point.p50_us.is_finite() && point.p99_us.is_finite());
    }

    #[test]
    fn sharded_cores_pop_the_exact_order_of_a_single_merged_core(
        cores in 1usize..9,
        ops in prop::collection::vec((any::<bool>(), 0u64..200_000), 1..300),
    ) {
        // The cluster's lock-step group must be a pure partition of one
        // merged event core: for any interleaving of pushes (to the lane
        // the tag hashes to) and pops, an N-core group pops exactly the
        // `(timestamp, seq)` order a single core defines, pop for pop.
        // Both structures clamp past-due pushes to their frontier, so the
        // equivalence holds inductively only if the frontiers never
        // diverge — which this asserts along the way.
        let mut group: ShardedCores<u64> = ShardedCores::new(cores);
        let mut merged: EventQueue<u64> = EventQueue::new();
        let mut tag = 0u64;
        // The scheduled interleaving, then enough pops to drain both.
        let drain = (false, 0u64);
        let budget = ops.len() * 2;
        for &(is_push, at) in ops.iter().chain(std::iter::repeat(&drain)).take(budget) {
            if is_push {
                let at = Nanos::from_nanos(at);
                group.push(tag as usize % cores, at, tag);
                merged.push(at, tag);
                tag += 1;
            } else {
                prop_assert_eq!(group.len(), merged.len());
                let got = group.pop().map(|(_lane, at, v)| (at, v));
                prop_assert_eq!(got, merged.pop(), "pop order diverged");
                prop_assert_eq!(group.frontier(), merged.frontier());
            }
        }
        prop_assert!(group.is_empty() && merged.is_empty());
    }

    #[test]
    fn pipeline_trials_are_deterministic_per_seed(seed in 0u64..u64::MAX) {
        let bench = PipelineBenchmark {
            clients: 32,
            requests_per_point: 160,
            runs: 1,
            sweep: vec![PipelineSetting::new(3, BASELINE_HIT_RATE)],
            ..PipelineBenchmark::quick(LoadBackend::Memcached)
        };
        let platform = PlatformId::Docker.build();
        let a = bench.run_trial(&platform, &mut SimRng::seed_from(seed)).unwrap();
        let b = bench.run_trial(&platform, &mut SimRng::seed_from(seed)).unwrap();
        prop_assert_eq!(a, b);
    }
}
