//! Acceptance tests of the multi-tenant co-location subsystem: the merged
//! figures' shape, the victim's monotone latency response to aggressor
//! load, the weighted-vs-FIFO isolation guarantee, and bit-identical
//! results across executor worker counts.

use std::sync::OnceLock;

use isolation_bench::harness::grid;
use isolation_bench::harness::Series;
use isolation_bench::prelude::*;

fn cfg() -> RunConfig {
    RunConfig::quick(2021)
}

const EXPERIMENTS: [ExperimentId; 2] = [
    ExperimentId::TenantIsolationMemcached,
    ExperimentId::TenantIsolationMysql,
];

/// The serial reference figures, computed once: they are a pure function
/// of the fixed seed, and every test in this file reads them.
fn tenant_figures() -> &'static Vec<FigureData> {
    static FIGURES: OnceLock<Vec<FigureData>> = OnceLock::new();
    FIGURES.get_or_init(|| {
        EXPERIMENTS
            .iter()
            .map(|e| figures::run(*e, &cfg()))
            .collect()
    })
}

fn platforms_of(fig: &FigureData) -> Vec<String> {
    grid::platforms_of(fig, grid::TENANT_VICTIM_P99)
}

fn series<'f>(fig: &'f FigureData, platform: &str, metric: &str) -> &'f Series {
    fig.series_named(&format!("{platform} {metric}"))
        .unwrap_or_else(|| panic!("{:?} lacks {platform} {metric}", fig.experiment))
}

#[test]
fn tenant_figures_are_bit_identical_for_1_2_and_8_workers() {
    let serial = tenant_figures();
    let serial_csv: Vec<String> = serial.iter().map(report::to_csv).collect();
    for workers in [1, 2, 8] {
        let run = Executor::new(
            RunPlan::new(cfg())
                .with_shard("tenant_")
                .with_workers(workers),
        )
        .run();
        assert_eq!(&run.figures, serial, "workers={workers}");
        let csv: Vec<String> = run.figures.iter().map(report::to_csv).collect();
        assert_eq!(
            csv, serial_csv,
            "workers={workers} must render identical bytes"
        );
    }
}

#[test]
fn sweeps_cover_every_platform_metric_and_reach_overload() {
    for fig in tenant_figures() {
        let platforms = platforms_of(fig);
        assert!(
            platforms.len() >= 3,
            "{:?} covers only {platforms:?}",
            fig.experiment
        );
        assert_eq!(
            fig.series.len(),
            platforms.len() * grid::TENANT_METRICS.len()
        );
        for platform in &platforms {
            for metric in grid::TENANT_METRICS {
                let s = series(fig, platform, metric);
                assert!(
                    s.points.len() >= 5,
                    "{:?}/{platform} {metric} sweeps only {} points",
                    fig.experiment,
                    s.points.len()
                );
                assert!(
                    s.points.last().unwrap().x_value > 1.0,
                    "the aggressor sweep must reach overload"
                );
                for p in &s.points {
                    assert!(p.mean.is_finite());
                }
            }
        }
    }
}

#[test]
fn victim_latency_is_monotone_in_aggressor_load() {
    // The victim's tail rises with aggressor load and then plateaus once
    // the weighted scheduler caps its exposure; the tolerance absorbs the
    // sub-percent coupling noise of the plateau region.
    for fig in tenant_figures() {
        for platform in platforms_of(fig) {
            for metric in [grid::TENANT_VICTIM_P99, grid::TENANT_VICTIM_FIFO_P99] {
                let s = series(fig, &platform, metric);
                let mut last = 0.0f64;
                for point in &s.points {
                    assert!(
                        point.mean >= last * 0.95,
                        "{:?}/{platform} {metric} regresses at aggressor {}: {} after {last}",
                        fig.experiment,
                        point.x,
                        point.mean
                    );
                    last = last.max(point.mean);
                }
                let first = s.points.first().unwrap().mean;
                let top = s.points.last().unwrap().mean;
                assert!(
                    top > first,
                    "{:?}/{platform} {metric} never inflates ({first} -> {top})",
                    fig.experiment
                );
            }
        }
    }
}

#[test]
fn weighted_slots_never_isolate_worse_than_fifo_sharing() {
    // The acceptance criterion: on every platform, at every sweep point,
    // the victim's p99 inflation over its solo baseline under the weighted
    // scheduler stays at or below its inflation under unweighted FIFO.
    for fig in tenant_figures() {
        for platform in platforms_of(fig) {
            let p99 = series(fig, &platform, grid::TENANT_VICTIM_P99);
            let fifo = series(fig, &platform, grid::TENANT_VICTIM_FIFO_P99);
            let solo = series(fig, &platform, grid::TENANT_VICTIM_SOLO_P99);
            for i in 0..p99.points.len() {
                let baseline = solo.points[i].mean;
                assert!(baseline > 0.0);
                let weighted = p99.points[i].mean / baseline;
                let unweighted = fifo.points[i].mean / baseline;
                assert!(
                    weighted <= unweighted,
                    "{:?}/{platform} at aggressor {}: weighted inflation {weighted:.3} \
                     exceeds FIFO inflation {unweighted:.3}",
                    fig.experiment,
                    p99.points[i].x
                );
            }
            // At overload the weighted scheduler must be strictly better,
            // not merely tied.
            let top_weighted = p99.points.last().unwrap().mean;
            let top_fifo = fifo.points.last().unwrap().mean;
            assert!(
                top_weighted < top_fifo,
                "{:?}/{platform}: weighted {top_weighted} vs fifo {top_fifo} at overload",
                fig.experiment
            );
        }
    }
}

#[test]
fn rates_are_fractions_and_the_isolation_index_is_anchored() {
    for fig in tenant_figures() {
        for platform in platforms_of(fig) {
            for metric in [
                grid::TENANT_VICTIM_DROP_RATE,
                grid::TENANT_VICTIM_SLO_VIOLATION,
                grid::TENANT_AGGRESSOR_DROP_RATE,
            ] {
                for point in &series(fig, &platform, metric).points {
                    assert!(
                        (0.0..=1.0).contains(&point.mean),
                        "{:?}/{platform} {metric} = {} is not a fraction",
                        fig.experiment,
                        point.mean
                    );
                }
            }
            for point in &series(fig, &platform, grid::TENANT_ISOLATION_INDEX).points {
                assert!(
                    point.mean >= 0.99,
                    "{:?}/{platform}: co-located p99 cannot beat the solo baseline ({})",
                    fig.experiment,
                    point.mean
                );
            }
            // The bounded queue sheds the aggressor's overload: monotone
            // drop rate, strictly positive at the top of the sweep.
            let drops = series(fig, &platform, grid::TENANT_AGGRESSOR_DROP_RATE);
            let mut last = 0.0f64;
            for point in &drops.points {
                assert!(
                    point.mean >= last - 1e-9,
                    "{:?}/{platform} aggressor drop rate regresses at {}",
                    fig.experiment,
                    point.x
                );
                last = point.mean;
            }
            assert!(
                drops.points.last().unwrap().mean > 0.0,
                "{:?}/{platform}: no drops at overload",
                fig.experiment
            );
        }
    }
}
