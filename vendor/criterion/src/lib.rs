//! Offline stand-in for `criterion`.
//!
//! Implements the slice of criterion's API the bench targets use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs
//! `sample_size` timed samples and prints mean wall-clock time per
//! iteration; there is no statistical analysis or HTML report.

#![warn(missing_docs)]

use std::hint;
use std::time::Instant;

/// Default number of samples when a group does not override it.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark and prints its mean time per sample.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed_ns: 0,
            iterations: 0,
        };
        for _ in 0..self.sample_size {
            routine(&mut bencher);
        }
        let mean = bencher
            .elapsed_ns
            .checked_div(bencher.iterations)
            .unwrap_or(0);
        println!("  {name}: {mean} ns/iter ({} iters)", bencher.iterations);
        self
    }

    /// Ends the group. Accepted for API compatibility.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iterations: u128,
}

impl Bencher {
    /// Times one execution of `routine`, accumulating into the sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iterations += 1;
        drop(black_box(out));
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        let mut calls = 0;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
