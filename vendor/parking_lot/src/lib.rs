//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! surface (`lock()`/`read()`/`write()` return guards directly). A
//! poisoned std lock is recovered rather than propagated, matching
//! parking_lot's behavior of not poisoning on panic.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
