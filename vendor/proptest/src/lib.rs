//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest's API the workspace tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, range and string
//! strategies, tuple strategies, and `prop::collection::{vec, btree_map}`.
//!
//! Semantics: every property runs [`NUM_CASES`] deterministic cases drawn
//! from a per-test seeded PRNG (seed derived from the test name), so runs
//! are reproducible. There is no shrinking — a failing case panics with
//! the ordinary assert message.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Number of cases each property executes.
pub const NUM_CASES: usize = 64;

/// Collection and primitive strategy constructors, mirroring
/// `proptest::prelude::prop`.
pub mod prop {
    /// Strategies producing collections.
    pub mod collection {
        pub use crate::strategy::{btree_map, vec};
    }
}

/// Returns a strategy producing arbitrary values of `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// The catch-all import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]`-style function that samples every strategy
/// [`NUM_CASES`] times from a deterministic PRNG and runs the body.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
