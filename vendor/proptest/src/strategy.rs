//! The strategy trait and the combinators the workspace tests use.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.u64_in(self.start, self.end)
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.u64_in(u64::from(self.start), u64::from(self.end)) as u32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String strategies: a `&str` is interpreted the way the in-tree tests
/// use it — a `.{m,n}` regex meaning "m to n arbitrary printable ASCII
/// characters". Any other pattern falls back to 1..=16 characters.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((1, 16));
        let len = rng.usize_in(lo, hi + 1);
        (0..len)
            .map(|_| char::from(rng.u64_in(0x20, 0x7f) as u8))
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "arbitrary value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the tests need.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`crate::any`].
#[derive(Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Any<T> {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`, with elements drawn
/// from `element`. Mirrors `prop::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.usize_in(self.size.start, self.size.end);
        let mut map = BTreeMap::new();
        // Key collisions shrink the map, as in real proptest; a bounded
        // number of extra draws keeps generation total.
        let mut attempts = 0;
        while map.len() < target && attempts < target * 8 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        map
    }
}

/// Generates `BTreeMap`s whose size falls in `size`, with keys and values
/// drawn from the given strategies. Mirrors `prop::collection::btree_map`.
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let strat = vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn string_pattern_bounds_are_parsed() {
        assert_eq!(parse_repeat_bounds(".{1,16}"), Some((1, 16)));
        assert_eq!(parse_repeat_bounds("[a-z]+"), None);
        let mut rng = TestRng::deterministic("str");
        for _ in 0..100 {
            let s = ".{1,16}".generate(&mut rng);
            let n = s.chars().count();
            assert!((1..=16).contains(&n));
        }
    }
}
