//! Deterministic PRNG used to drive property-test case generation.

/// A splitmix64-based PRNG. Deterministic per test name so property runs
/// are reproducible without any environment configuration.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a hashing.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: hash }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform `u64` in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        let span = hi - lo;
        // Rejection-free modulo bias is fine for test-case generation.
        lo + self.next_u64() % span
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = rng.u64_in(5, 10);
            assert!((5..10).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
