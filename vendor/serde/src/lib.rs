//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, and the workspace only
//! uses serde as `#[derive(Serialize, Deserialize)]` decoration — no code
//! path serializes anything. This crate provides the two trait names (so
//! `use serde::{Serialize, Deserialize}` resolves and bounds could be
//! written later) and re-exports no-op derive macros under the same names,
//! mirroring the real crate's `derive` feature layout.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
