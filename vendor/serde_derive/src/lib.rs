//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as decoration
//! plus the occasional `T: Serialize` static assertion, so these derives
//! parse just the type name from the input and emit empty marker-trait
//! impls (the in-tree `serde` stand-in defines both traits without
//! methods). Generic types are not supported — nothing in-tree derives
//! serde on one.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stand-in: no struct/enum/union name in input");
}

/// Derives the stand-in `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the stand-in `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}
